// Package faster is a from-scratch Go implementation of the FASTER
// key-value store (§2 of the Shadowfax paper): a lock-free hash index over a
// HybridLog record heap that spans memory, local SSD and (in Shadowfax) a
// shared cloud tier. It supports reads, blind upserts, read-modify-writes
// and deletes; in-place updates in the mutable region; read-copy-update in
// the read-only region; asynchronous pending I/O for records on storage; and
// CPR-style checkpoints over asynchronous global cuts.
//
// One Store is shared by all server threads (Shadowfax's partitioned-
// dispatch/shared-data design); each thread owns one Session.
package faster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hashfn"
	"repro/internal/hashidx"
	"repro/internal/hlog"
	"repro/internal/storage"
)

// Status is the result of a store operation.
type Status uint8

// Operation statuses.
const (
	// StatusOK: the operation completed.
	StatusOK Status = iota
	// StatusNotFound: the key does not exist (or is deleted).
	StatusNotFound
	// StatusPending: the operation needs storage I/O; its callback will run
	// during a later CompletePending on the same session.
	StatusPending
	// StatusIndirection: the lookup reached an indirection record covering
	// the key's hash; the caller (Shadowfax's server layer) must fetch the
	// remainder of the chain from the shared tier.
	StatusIndirection
	// StatusError: the operation failed.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NotFound"
	case StatusPending:
		return "Pending"
	case StatusIndirection:
		return "Indirection"
	default:
		return "Error"
	}
}

// RMWOps defines a read-modify-write for a Store. YCSB-F's counter update is
// the canonical instance (CounterRMW).
type RMWOps interface {
	// Initial returns the value for a key that does not exist yet.
	Initial(input []byte) []byte
	// TryInPlace attempts to apply input to value in place atomically (the
	// record is in the mutable region); it reports success. value aliases
	// the log frame: implementations use the Record's atomic accessors via
	// the provided record view.
	TryInPlace(r hlog.Record, input []byte) bool
	// Apply returns the new value derived from old (nil if absent) and
	// input, for the read-copy-update path.
	Apply(old, input []byte) []byte
}

// Config describes a Store.
type Config struct {
	// IndexBuckets is the number of main hash buckets (power of two).
	IndexBuckets int
	// Log configures the HybridLog (Device, Epoch etc. filled by caller;
	// Epoch may be nil to let the store create its own manager).
	Log hlog.Config
	// RMW implements read-modify-write semantics; defaults to CounterRMW.
	RMW RMWOps
	// MaxPendingPerSession bounds queued pending operations per session.
	MaxPendingPerSession int
	// ReadHintBytes sizes the first storage read of a pending operation;
	// records at most this large need a single I/O. Defaults to 256.
	ReadHintBytes int
	// ReadAheadBytes extends each pipelined record read backwards by up to
	// this many bytes (clamped to the page start): chain predecessors on the
	// same page land in the span and follow hops are served without another
	// device trip. Defaults to 1024; negative disables read-behind.
	ReadAheadBytes int
	// ReadCache enables the second-chance read cache: disk-resident read
	// hits are (probabilistically) copied back into the mutable log region
	// so subsequent reads hit memory. See readcache.go.
	ReadCache bool
	// ReadCacheSlots sizes the read cache's second-chance filter (rounded up
	// to a power of two). Defaults to 8192.
	ReadCacheSlots int
}

// Store is a FASTER instance.
type Store struct {
	cfg    Config
	epoch  *epoch.Manager
	index  *hashidx.Index
	log    *hlog.Log
	rmw    RMWOps
	device storage.Device

	// version is the CPR checkpoint version; records are stamped with it.
	version atomic.Uint32

	// cutsPending counts version cuts (SealVersion/CheckpointCut) whose
	// epoch bump has not drained yet: the version was advanced but some
	// session may still execute under the sealed version. Sessions that have
	// already adopted the new version consult CutPending and stall their
	// write intake until the cut drains — post-cut writes racing pre-cut
	// writers poison the cut (see CutPending).
	cutsPending atomic.Int32

	// sampleFilter, when set, forces accessed records below the captured
	// tail to be copied to the tail (Shadowfax's Sampling phase, §3.3).
	sampleFilter atomic.Value // func(hash uint64, addr hlog.Address) bool

	// fences retire stale records from earlier tenancies of re-acquired
	// hash ranges (see fence.go).
	fences fenceSet

	// Second-chance read cache filter tables (nil when disabled): cacheSeen
	// holds the second-chance bits, cachePromoted the tags of keys whose
	// records were copied to the tail (see readcache.go).
	cacheSeen     []atomic.Uint32
	cachePromoted []atomic.Uint32
	cacheMask     uint64

	stats StoreStats
}

// cachePad separates hot atomic counters onto their own cache lines so
// per-op updates from different session threads do not false-share.
type cachePad [56]byte

// StoreStats aggregates operation counters across sessions. Each per-op
// counter group sits on its own cache line: under a mixed workload
// different dispatcher cores bump different counters, and without padding
// every bump would invalidate the others' lines.
type StoreStats struct {
	Reads          atomic.Uint64
	_              cachePad
	Upserts        atomic.Uint64
	_              cachePad
	RMWs           atomic.Uint64
	_              cachePad
	Deletes        atomic.Uint64
	_              cachePad
	InPlaceUpdates atomic.Uint64
	RCUUpdates     atomic.Uint64
	_              cachePad
	PendingIssued  atomic.Uint64
	SampledCopies  atomic.Uint64
	_              cachePad
	// Cold-read pipeline counters (flushReads, on session goroutines):
	// PendingCoalesced counts ops that shared another op's in-flight device
	// read; DeviceBatchReads counts batch submissions; ReadaheadHits counts
	// chain hops served from a span already read.
	PendingCoalesced atomic.Uint64
	DeviceBatchReads atomic.Uint64
	ReadaheadHits    atomic.Uint64
	_                cachePad
	// Second-chance read cache counters: copies to the tail and (tag-based,
	// approximate) in-memory hits on promoted keys.
	ReadCacheCopies atomic.Uint64
	ReadCacheHits   atomic.Uint64
}

// NewStore creates a Store. The log device must be set in cfg.Log.Device.
func NewStore(cfg Config) (*Store, error) {
	if cfg.IndexBuckets == 0 {
		cfg.IndexBuckets = 1 << 16
	}
	if cfg.RMW == nil {
		cfg.RMW = CounterRMW{}
	}
	if cfg.MaxPendingPerSession == 0 {
		cfg.MaxPendingPerSession = 4096
	}
	if cfg.ReadHintBytes == 0 {
		cfg.ReadHintBytes = 256
	}
	if cfg.ReadAheadBytes == 0 {
		cfg.ReadAheadBytes = 1024
	} else if cfg.ReadAheadBytes < 0 {
		cfg.ReadAheadBytes = 0
	}
	if cfg.ReadCacheSlots <= 0 {
		cfg.ReadCacheSlots = 8192
	}
	em := cfg.Log.Epoch
	if em == nil {
		em = epoch.NewManager()
		cfg.Log.Epoch = em
	}
	ix, err := hashidx.New(cfg.IndexBuckets)
	if err != nil {
		return nil, err
	}
	lg, err := hlog.New(cfg.Log)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:    cfg,
		epoch:  em,
		index:  ix,
		log:    lg,
		rmw:    cfg.RMW,
		device: cfg.Log.Device,
	}
	s.version.Store(1)
	if cfg.ReadCache {
		slots := 1
		for slots < cfg.ReadCacheSlots {
			slots <<= 1
		}
		s.cacheSeen = make([]atomic.Uint32, slots)
		s.cachePromoted = make([]atomic.Uint32, slots)
		s.cacheMask = uint64(slots - 1)
	}
	return s, nil
}

// Close shuts down the store's log. Sessions must be closed first.
func (s *Store) Close() error { return s.log.Close() }

// Epoch returns the store's epoch manager (shared with the server layer for
// view changes and migration phase cuts).
func (s *Store) Epoch() *epoch.Manager { return s.epoch }

// Index exposes the hash index to the migration machinery.
func (s *Store) Index() *hashidx.Index { return s.index }

// Log exposes the HybridLog to the migration machinery.
func (s *Store) Log() *hlog.Log { return s.log }

// CurrentVersion returns the CPR version new records are stamped with.
func (s *Store) CurrentVersion() uint32 { return s.version.Load() }

// CutPending reports whether a version cut has been sealed but not yet
// crossed by every session. While it holds, sessions already at the new
// version must not execute writes: a new-version record appended while an
// old-version session still runs can be picked up by that session's
// copy-on-write, folding post-cut effects into a record stamped below the
// cut — the sealed prefix (checkpoint image or replication base scan) then
// contains operations that recovery or the live replication stream applies
// a second time. Callers stall write intake until this returns false,
// refreshing their session each spin so the cut can drain.
func (s *Store) CutPending() bool { return s.cutsPending.Load() != 0 }

// Stats returns the store's counters.
func (s *Store) Stats() *StoreStats { return &s.stats }

// HashOf returns the key hash used for indexing and hash-range partitioning.
func HashOf(key []byte) uint64 { return hashfn.Hash(key) }

// IndexSlot aliases the hash-index slot type so the server layer can walk
// index regions without importing the index package directly.
type IndexSlot = hashidx.Slot

// SetSampleFilter installs (or clears, with nil) the Sampling-phase hook:
// accessed records for which fn returns true are copied to the log tail.
func (s *Store) SetSampleFilter(fn func(hash uint64, addr hlog.Address) bool) {
	s.sampleFilter.Store(fn)
}

func (s *Store) sampler() func(uint64, hlog.Address) bool {
	fn, _ := s.sampleFilter.Load().(func(uint64, hlog.Address) bool)
	return fn
}

// CounterRMW implements RMWOps for 8-byte little-endian counters: input is
// an 8-byte delta (missing/short inputs count as 1). This is YCSB workload
// F's increment.
type CounterRMW struct{}

// Initial returns input as the starting counter value.
func (CounterRMW) Initial(input []byte) []byte {
	out := make([]byte, 8)
	copy(out, input)
	return out
}

// TryInPlace atomically adds the delta when the value is exactly 8 bytes.
func (CounterRMW) TryInPlace(r hlog.Record, input []byte) bool {
	if r.ValueLen() != 8 {
		return false
	}
	r.AddValueWord(leU64(input))
	return true
}

// Apply returns old+delta.
func (CounterRMW) Apply(old, input []byte) []byte {
	out := make([]byte, 8)
	var cur uint64
	if len(old) >= 8 {
		cur = leU64(old)
	}
	putLeU64(out, cur+leU64(input))
	return out
}

func leU64(b []byte) uint64 {
	if len(b) < 8 {
		if len(b) == 0 {
			return 1
		}
		var tmp [8]byte
		copy(tmp[:], b)
		b = tmp[:]
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("faster: session closed")

func errStatus(format string, args ...any) error {
	return fmt.Errorf("faster: "+format, args...)
}
