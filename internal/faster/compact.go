package faster

import (
	"bytes"
	"fmt"

	"repro/internal/hlog"
)

// Log compaction (§3.3.3): the stable prefix is scanned sequentially; live
// records are copied forward to the tail, stale versions are dropped, and —
// the Shadowfax twist — records whose hash range this server no longer owns
// are handed to relocate() for transmission to the current owner, which is
// also how indirection records between logs get cleaned up lazily.

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	Scanned   int
	Kept      int // live records copied forward
	Dropped   int // superseded versions, tombstones, invalid, indirection
	Relocated int // records in hash ranges this server no longer owns
}

// Compact scans [BeginAddress, upTo) from the device, copying live owned
// records to the tail and handing disowned records to relocate (may be nil
// to drop them). upTo is clamped to the safe head (only device-resident
// pages are scanned). owned may be nil, meaning "owns everything". The
// session must be exclusive to this call for its duration.
func (sess *Session) Compact(upTo hlog.Address, owned func(hash uint64) bool,
	relocate func(rec CollectedRecord)) (CompactStats, error) {
	var st CompactStats
	lg := sess.s.log
	if upTo > lg.SafeHeadAddress() {
		upTo = lg.SafeHeadAddress()
	}
	begin := lg.BeginAddress()
	if upTo <= begin {
		return st, nil
	}
	pageBits := uint(0)
	for 1<<pageBits != lg.PageSize() {
		pageBits++
	}
	buf := lg.NewPageBuffer()
	endPage := upTo.Page(pageBits) // scan whole pages strictly below upTo's page
	for p := begin.Page(pageBits); p < endPage; p++ {
		if err := lg.ReadPageFromDevice(p, buf); err != nil {
			return st, fmt.Errorf("faster: compaction read of page %d: %w", p, err)
		}
		base := hlog.Address(p << pageBits)
		var cerr error
		hlog.ScanPageBuffer(base, buf, func(addr hlog.Address, r hlog.Record) bool {
			st.Scanned++
			m := r.Meta()
			if m.Invalid() || m.Indirection() {
				// Indirection records in the stable prefix are dead: any
				// lookup that needed them resolved or will resolve through
				// the in-memory splice; the cross-log dependency is being
				// compacted away right now.
				st.Dropped++
				return true
			}
			key := r.Key()
			hash := HashOf(key)
			if owned != nil && !owned(hash) {
				if relocate != nil {
					relocate(CollectedRecord{
						Hash:      hash,
						Key:       append([]byte(nil), key...),
						Value:     append([]byte(nil), r.Value()...),
						Tombstone: m.Tombstone(),
					})
				}
				st.Relocated++
				return true
			}
			live, err := sess.isNewestVersion(key, hash, addr)
			if err != nil {
				cerr = err
				return false
			}
			if !live || m.Tombstone() {
				// Superseded versions always die here. A live tombstone
				// also dies: everything older is inside the compacted
				// prefix, so dropping both erases the key completely.
				st.Dropped++
				return true
			}
			if sess.copyForward(key, hash, addr, r.Value()) {
				st.Kept++
			} else {
				// Lost the race to a concurrent writer: their version is
				// newer, ours is garbage.
				st.Dropped++
			}
			sess.g.Refresh()
			return true
		})
		if cerr != nil {
			return st, cerr
		}
		sess.g.Refresh()
	}
	lg.TruncateUntil(hlog.Address(endPage << pageBits))
	return st, nil
}

// isNewestVersion reports whether addr holds key's newest version, following
// the chain through storage synchronously if needed (compaction is a
// background task; blocking reads are fine).
func (sess *Session) isNewestVersion(key []byte, hash uint64, addr hlog.Address) (bool, error) {
	slot := sess.s.index.FindEntry(hash)
	res := sess.walkMemory(slot, key, hash)
	switch res.status {
	case walkFound, walkTombstone:
		return res.addr == addr, nil
	case walkNotFound, walkIndirection:
		return false, nil
	}
	// Chain continues on storage: the first storage match decides.
	cur := res.addr
	lg := sess.s.log
	for cur != hlog.InvalidAddress && cur >= lg.BeginAddress() {
		rec, err := lg.ReadRecordFromDevice(cur, sess.s.cfg.ReadHintBytes+len(key))
		if err != nil {
			return false, err
		}
		m := rec.Meta()
		if !m.Invalid() && !m.Indirection() && bytes.Equal(rec.Key(), key) {
			return cur == addr, nil
		}
		cur = m.Previous()
	}
	return false, nil
}

// copyForward re-appends a live record at the tail with a single-shot CAS
// against the current chain head; failure means a concurrent writer
// installed something newer, which supersedes the compacted copy anyway.
func (sess *Session) copyForward(key []byte, hash uint64, oldAddr hlog.Address, value []byte) bool {
	slot := sess.s.index.FindOrCreateEntry(hash)
	entry := slot.Load()
	res := walkResult{slot: slot, entry: entry, hash: hash}
	return sess.condAppend(res, key, value, false)
}
