package faster

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/hlog"
)

// Log compaction (§3.3.3): the stable prefix is scanned sequentially; live
// records are copied forward to the tail, stale versions are dropped, and —
// the Shadowfax twist — records whose hash range this server no longer owns
// are handed to relocate() for transmission to the current owner, which is
// also how indirection records between logs get cleaned up lazily.

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	Scanned   int
	Kept      int // live records copied forward
	Dropped   int // superseded versions, tombstones, invalid, indirection
	Relocated int // records in hash ranges this server no longer owns
}

// ErrRelocateAborted is returned by Compact/CompactScan when the relocate
// callback reports it can no longer deliver records (e.g. the owner is
// unreachable): scanning further would only collect records into the same
// doomed batch, so the pass stops early. The prefix is left untouched for a
// later pass to rescan.
var ErrRelocateAborted = errors.New("faster: relocation aborted; compaction pass stopped")

// Compact scans [BeginAddress, upTo) from the device, copying live owned
// records to the tail and handing the newest version of each disowned key to
// relocate (may be nil to drop them; stale disowned versions always die
// here). relocate returns whether it accepted the record; false aborts the
// pass with ErrRelocateAborted. upTo is clamped to the safe head (only
// device-resident pages are scanned). owned may be nil, meaning "owns
// everything". The session must be exclusive to this call for its duration.
func (sess *Session) Compact(upTo hlog.Address, owned func(hash uint64) bool,
	relocate func(rec CollectedRecord) bool) (CompactStats, error) {
	st, end, err := sess.CompactScan(upTo, owned, relocate)
	if err != nil {
		return st, err
	}
	sess.s.log.TruncateUntil(end)
	return st, nil
}

// CompactScan is Compact without the final TruncateUntil: it returns the
// address the scan covered so the caller can advance the begin address only
// after any relocated records are confirmed delivered (a failed delivery
// must leave the prefix in place for the next pass to rescan — relocation
// re-sends are idempotent at the receiver, truncation is not).
func (sess *Session) CompactScan(upTo hlog.Address, owned func(hash uint64) bool,
	relocate func(rec CollectedRecord) bool) (CompactStats, hlog.Address, error) {
	var st CompactStats
	lg := sess.s.log
	if upTo > lg.SafeHeadAddress() {
		upTo = lg.SafeHeadAddress()
	}
	begin := lg.BeginAddress()
	if upTo <= begin {
		return st, begin, nil
	}
	pageBits := uint(0)
	for 1<<pageBits != lg.PageSize() {
		pageBits++
	}
	buf := lg.NewPageBuffer()
	endPage := upTo.Page(pageBits) // scan whole pages strictly below upTo's page
	for p := begin.Page(pageBits); p < endPage; p++ {
		if err := lg.ReadPageFromDevice(p, buf); err != nil {
			return st, begin, fmt.Errorf("faster: compaction read of page %d: %w", p, err)
		}
		base := hlog.Address(p << pageBits)
		var cerr error
		hlog.ScanPageBuffer(base, buf, func(addr hlog.Address, r hlog.Record) bool {
			st.Scanned++
			m := r.Meta()
			if m.Invalid() || m.Indirection() {
				// Indirection records in the stable prefix are dead: any
				// lookup that needed them resolved or will resolve through
				// the in-memory splice; the cross-log dependency is being
				// compacted away right now.
				st.Dropped++
				return true
			}
			key := r.Key()
			hash := HashOf(key)
			if owned != nil && !owned(hash) {
				// Relocate only the key's newest version: the receiver
				// installs records conditionally (first-in wins against the
				// indirection suffix), so shipping stale versions in scan
				// order could shadow the newest. Anything newer that lives
				// in memory was already shipped by the migration itself.
				live, err := sess.isNewestVersion(key, hash, addr)
				if err != nil {
					cerr = err
					return false
				}
				if live && relocate != nil {
					if !relocate(CollectedRecord{
						Hash:      hash,
						Key:       append([]byte(nil), key...),
						Value:     append([]byte(nil), r.Value()...),
						Tombstone: m.Tombstone(),
					}) {
						cerr = ErrRelocateAborted
						return false
					}
					st.Relocated++
				} else {
					st.Dropped++
				}
				return true
			}
			if m.Tombstone() {
				// Tombstones always die here, newest or not: everything
				// older is inside the compacted prefix, so dropping the
				// tombstone together with the versions it shadows erases
				// the key completely.
				st.Dropped++
				return true
			}
			copied, err := sess.compactCopyForward(key, hash, addr, r.Value())
			if err != nil {
				cerr = err
				return false
			}
			if copied {
				st.Kept++
			} else {
				// Superseded (a newer version exists in memory or on
				// storage) or lost the race to a concurrent writer whose
				// version is newer either way.
				st.Dropped++
			}
			sess.g.Refresh()
			return true
		})
		if cerr != nil {
			return st, begin, cerr
		}
		sess.g.Refresh()
	}
	return st, hlog.Address(endPage << pageBits), nil
}

// isNewestVersion reports whether addr holds key's newest version, following
// the chain through storage synchronously if needed (compaction is a
// background task; blocking reads are fine).
func (sess *Session) isNewestVersion(key []byte, hash uint64, addr hlog.Address) (bool, error) {
	slot := sess.s.index.FindEntry(hash)
	res := sess.walkMemory(slot, key, hash)
	switch res.status {
	case walkFound, walkTombstone:
		return res.addr == addr, nil
	case walkNotFound, walkIndirection:
		return false, nil
	}
	// Chain continues on storage: the first storage match decides.
	return sess.storageNewest(key, hash, res.addr, addr)
}

// compactCopyForward re-appends the record at addr to the tail iff it is
// still key's newest version, verifying and appending against ONE chain-head
// snapshot: the newest-version walk (memory, then storage) starts from the
// same entry the final CAS compares against, so a foreground write landing
// between verification and append changes the entry and forces a retry —
// without the shared snapshot, a concurrent upsert could slip in between and
// the stale compacted copy would be CASed in front of it, losing an
// acknowledged write. Reports whether the copy was installed (false: addr is
// superseded, unreachable, or behind an indirection).
func (sess *Session) compactCopyForward(key []byte, hash uint64, addr hlog.Address,
	value []byte) (bool, error) {
	for {
		slot := sess.s.index.FindOrCreateEntry(hash)
		res := sess.walkMemory(slot, key, hash)
		switch res.status {
		case walkFound, walkTombstone:
			// An in-memory version exists; addr (device-resident, below the
			// safe head) is necessarily older.
			return false, nil
		case walkNotFound, walkIndirection:
			// The chain never reaches addr (terminated in memory, or defers
			// to a remote suffix): the record is dead weight.
			return false, nil
		}
		// Chain continues on storage at res.addr: the first storage match
		// decides newest-ness (compaction is a background task; blocking
		// reads are fine).
		newest, err := sess.storageNewest(key, hash, res.addr, addr)
		if err != nil {
			return false, err
		}
		if !newest {
			return false, nil
		}
		if sess.condAppend(res, key, value, false) {
			return true, nil
		}
		// The chain head moved between the snapshot and the CAS: re-verify
		// against the new head before trying again.
	}
}

// storageNewest walks the on-device chain from start and reports whether
// addr holds key's first (hence newest) storage match. The walk stops at the
// key's ownership fence: records below it are retired, so a fenced addr is
// never newest (it is dead and must not be copied forward).
func (sess *Session) storageNewest(key []byte, hash uint64, start, addr hlog.Address) (bool, error) {
	lg := sess.s.log
	fence := sess.s.fenceBelow(hash)
	cur := start
	for cur != hlog.InvalidAddress && cur >= lg.BeginAddress() && cur >= fence {
		rec, err := lg.ReadRecordFromDevice(cur, sess.s.cfg.ReadHintBytes+len(key))
		if err != nil {
			return false, err
		}
		m := rec.Meta()
		if !m.Invalid() && !m.Indirection() && bytes.Equal(rec.Key(), key) {
			return cur == addr, nil
		}
		cur = m.Previous()
	}
	return false, nil
}
