package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/hashidx"
	"repro/internal/hlog"
)

// Checkpointing follows the CPR scheme (§2.1, [41]) adapted to this
// reproduction: the checkpoint version is advanced over an asynchronous
// global cut; once every thread has crossed the cut, the log is flushed up
// to a captured tail and the (fuzzy) hash index plus the open page's prefix
// are serialized. No thread ever stalls: the capture runs on a background
// goroutine after the cut fires.
//
// Recovery restores the index image, reloads the open page into its frame,
// and points the region markers at the device-resident prefix. As in the
// paper (§3.3.1), exactly-once client semantics across a crash are the
// client library's job (client-assisted recovery); the store-level
// guarantee is that every operation before the cut is durable.

const checkpointMagic = 0x53464158 // "SFAX"

// CheckpointInfo summarizes a completed checkpoint.
type CheckpointInfo struct {
	Version   uint32       // CPR version that was sealed
	Tail      hlog.Address // log prefix covered by the checkpoint
	Begin     hlog.Address
	PageBits  uint
	IndexSize int
}

// Checkpoint seals the current CPR version over a global cut, then persists
// the store to w on a background goroutine. done receives the result
// exactly once. The store remains fully available throughout.
func (s *Store) Checkpoint(w io.Writer, done func(CheckpointInfo, error)) {
	s.CheckpointCut(w, nil, done)
}

// CheckpointCut is Checkpoint with a cut hook: onCut runs on the background
// goroutine after every thread has crossed the version cut and before any
// checkpoint bytes are written to w, receiving the sealed version. The
// server layer uses it to serialize its own section (ownership view, client
// session table restricted to operations stamped <= sealed) into the same
// image — recovery then filters the fuzzy log to exactly that version
// prefix, so the two sections agree record-for-record.
func (s *Store) CheckpointCut(w io.Writer, onCut func(sealed uint32), done func(CheckpointInfo, error)) {
	// The cut tail is captured before the version bump: every record stamped
	// sealed+1 is allocated after the bump, hence at or above this address.
	// Recovery only applies its version filter above it, which keeps the
	// 11-bit masked version comparison unambiguous (within one checkpoint
	// window only sealed and sealed+1 exist).
	s.cutsPending.Add(1)
	cutTail := s.log.TailAddress()
	sealed := s.version.Add(1) - 1
	s.epoch.BumpWithAction(func() {
		s.cutsPending.Add(-1)
		go func() {
			if onCut != nil {
				onCut(sealed)
			}
			info, err := s.writeCheckpoint(sealed, cutTail, w)
			done(info, err)
		}()
	})
}

// CheckpointSync is Checkpoint for callers that can block (tools, tests).
// It must not be called from an epoch-protected thread.
func (s *Store) CheckpointSync(w io.Writer) (CheckpointInfo, error) {
	type result struct {
		info CheckpointInfo
		err  error
	}
	ch := make(chan result, 1)
	s.Checkpoint(w, func(info CheckpointInfo, err error) { ch <- result{info, err} })
	s.epoch.DrainPending()
	r := <-ch
	return r.info, r.err
}

func (s *Store) writeCheckpoint(sealed uint32, cutTail hlog.Address, w io.Writer) (CheckpointInfo, error) {
	lg := s.log
	tail := lg.TailAddress()

	// Make everything below the tail's page durable on the device.
	lg.FlushUntil(tail)

	// Serialize the index after the cut; concurrent appends make it fuzzy,
	// but every referenced address is covered: entries only ever move
	// forward, and we flush-verify below.
	var idx bytes.Buffer
	if err := s.index.Snapshot(&idx); err != nil {
		return CheckpointInfo{}, err
	}

	// Re-read the tail: index entries may reference records appended while
	// snapshotting. Flush up to the post-snapshot tail so no serialized
	// entry dangles, then capture the open page's prefix.
	tail = lg.TailAddress()
	lg.FlushUntil(tail)

	pageBits := uint(0)
	for 1<<pageBits != lg.PageSize() {
		pageBits++
	}
	tailPage := tail.Page(pageBits)
	tailPageStart := hlog.Address(tailPage << pageBits)
	partial := lg.NewPageBuffer()
	if tail > tailPageStart {
		if !lg.FrameSnapshot(tailPage, partial) {
			return CheckpointInfo{}, fmt.Errorf("faster: tail page %d not resident", tailPage)
		}
	}
	partial = partial[:tail-tailPageStart]

	info := CheckpointInfo{
		Version: sealed, Tail: tail, Begin: lg.BeginAddress(),
		PageBits: pageBits, IndexSize: idx.Len(),
	}

	var hdr [52]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], sealed)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(tail))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(lg.BeginAddress()))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(pageBits))
	binary.LittleEndian.PutUint64(hdr[28:36], uint64(idx.Len()))
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(len(partial)))
	binary.LittleEndian.PutUint64(hdr[44:52], uint64(cutTail))
	if _, err := w.Write(hdr[:]); err != nil {
		return info, err
	}
	if _, err := w.Write(idx.Bytes()); err != nil {
		return info, err
	}
	if _, err := w.Write(partial); err != nil {
		return info, err
	}
	return info, nil
}

// Recover builds a Store from a checkpoint image and the device it was
// taken against (cfg.Log.Device). The store is ready for new sessions on
// return.
func Recover(cfg Config, r io.Reader) (*Store, error) {
	var hdr [52]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("faster: reading checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != checkpointMagic {
		return nil, fmt.Errorf("faster: bad checkpoint magic")
	}
	sealed := binary.LittleEndian.Uint32(hdr[4:8])
	tail := hlog.Address(binary.LittleEndian.Uint64(hdr[8:16]))
	begin := hlog.Address(binary.LittleEndian.Uint64(hdr[16:24]))
	pageBits := uint(binary.LittleEndian.Uint32(hdr[24:28]))
	idxLen := binary.LittleEndian.Uint64(hdr[28:36])
	partialLen := binary.LittleEndian.Uint64(hdr[36:44])
	cutTail := hlog.Address(binary.LittleEndian.Uint64(hdr[44:52]))

	if cfg.Log.PageBits != pageBits {
		return nil, fmt.Errorf("faster: checkpoint page bits %d != config %d",
			pageBits, cfg.Log.PageBits)
	}
	s, err := NewStore(cfg)
	if err != nil {
		return nil, err
	}
	ix, err := hashidx.RestoreSnapshot(io.LimitReader(r, int64(idxLen)))
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("faster: restoring index: %w", err)
	}
	s.index = ix

	tailPage := tail.Page(pageBits)
	tailPageStart := hlog.Address(tailPage << pageBits)
	if partialLen > 0 {
		page := s.log.NewPageBuffer()
		if _, err := io.ReadFull(r, page[:partialLen]); err != nil {
			s.Close()
			return nil, fmt.Errorf("faster: reading open page: %w", err)
		}
		s.log.RestoreFrame(tailPage, page)
	}
	s.log.RestoreMarkers(tail, tailPageStart, tailPageStart, tailPageStart)
	s.log.TruncateUntil(begin)
	if err := s.truncateChainsTo(sealed, cutTail); err != nil {
		s.Close()
		return nil, fmt.Errorf("faster: filtering recovered chains: %w", err)
	}
	s.version.Store(sealed + 1)
	return s, nil
}

// truncateChainsTo implements CPR recovery's version filter (§2.1, [41]):
// the checkpoint's index snapshot is fuzzy — it may reference records
// appended after the cut (stamped sealed+1) — so every chain is re-pointed
// at its newest pre-cut record. Post-cut records can only live at or above
// cutTail, which is what makes the 11-bit masked version stamp unambiguous
// here: within that window only sealed and sealed+1 coexist. Dropped suffix
// records stay in the log as garbage; they are unreachable and compaction
// reclaims them.
//
// Residual fuzziness relative to full CPR (which fences version-crossing
// threads with a phase protocol): a post-cut record spliced *below* a
// pre-cut chain head — two sessions racing the same bucket on opposite
// sides of the cut — is not unlinked, since its on-device predecessor
// pointer cannot be rewritten. The filter truncates head prefixes, which
// covers the systematic case (every chain whose head moved after the cut).
func (s *Store) truncateChainsTo(sealed uint32, cutTail hlog.Address) error {
	begin := s.log.BeginAddress()
	var walkErr error
	s.index.ForEachEntryInBuckets(0, s.index.NumBuckets(), func(_ uint64, slot hashidx.Slot) bool {
		e := slot.Load()
		if e.Free() {
			return true
		}
		addr, changed, err := s.newestPreCut(e.Address(), sealed, cutTail, begin)
		if err != nil {
			walkErr = err
			return false
		}
		if !changed {
			return true
		}
		if addr == hlog.InvalidAddress {
			slot.CompareAndSwap(e, 0) // whole chain is post-cut: free the slot
		} else {
			slot.CompareAndSwap(e, hashidx.PackEntry(e.Tag(), addr))
		}
		return true
	})
	return walkErr
}

// newestPreCut walks a chain from addr to the newest live record that is not
// stamped with the post-cut version, reading from the restored frames or the
// device as needed.
func (s *Store) newestPreCut(addr hlog.Address, sealed uint32, cutTail, begin hlog.Address) (hlog.Address, bool, error) {
	lg := s.log
	changed := false
	for addr != hlog.InvalidAddress && addr >= begin {
		if addr < cutTail {
			// Allocated before the version bump: pre-cut by construction.
			return addr, changed, nil
		}
		var m hlog.Meta
		if lg.InMemory(addr) {
			m = lg.RecordAt(addr).Meta()
		} else {
			rec, err := lg.ReadRecordFromDevice(addr, s.cfg.ReadHintBytes)
			if err != nil {
				return hlog.InvalidAddress, false, err
			}
			m = rec.Meta()
		}
		if !m.Invalid() && !hlog.SameVersion(m.Version(), sealed+1) {
			return addr, changed, nil
		}
		changed = true
		addr = m.Previous()
	}
	return hlog.InvalidAddress, changed, nil
}
