package faster

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/hlog"
)

// TestCompactConcurrentOverwrites: compaction passes racing a foreground
// writer must never shadow an acknowledged write with a stale compacted
// copy — the newest-version verification and the copy-forward CAS share one
// chain-head snapshot, so the race forces a retry instead. After the writer
// quiesces, every key must read its final round's value.
func TestCompactConcurrentOverwrites(t *testing.T) {
	s, _ := testStore(t)
	writer := s.NewSession()
	defer writer.Close()
	compactor := s.NewSession()

	const keys = 300
	const rounds = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < rounds; round++ {
			for i := 0; i < keys; i++ {
				writer.Upsert(key(i), []byte(fmt.Sprintf("r%03d-%s", round, val(i))), nil)
			}
		}
	}()
	lg := s.Log()
	for {
		select {
		case <-done:
		default:
			if _, err := compactor.Compact(lg.SafeHeadAddress(), nil, nil); err != nil {
				t.Error(err)
			}
			runtime.Gosched()
			continue
		}
		break
	}
	// One final pass against the quiesced log, then verify.
	if _, err := compactor.Compact(lg.SafeHeadAddress(), nil, nil); err != nil {
		t.Fatal(err)
	}
	compactor.Close()
	for i := 0; i < keys; i++ {
		want := fmt.Sprintf("r%03d-%s", rounds-1, val(i))
		got, st := mustRead(t, writer, key(i))
		if st != StatusOK || string(got) != want {
			t.Fatalf("key %d after concurrent compaction: %v %q, want %q", i, st, got, want)
		}
	}
}

// TestCompactionDropsIndirection: an indirection record in the stable prefix
// is dead weight (§3.3.3) — the cross-log dependency it represents is being
// compacted away — so a pass must drop it and lookups that used to defer to
// the remote suffix must become locally decidable.
func TestCompactionDropsIndirection(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	// Splice an indirection record covering the whole hash space into the
	// (empty) chain a probe key hashes to: reads of the probe key must defer
	// to the "remote log".
	probe := []byte("never-written-locally")
	h := HashOf(probe)
	payload := hlog.EncodeIndirection(hlog.IndirectionPayload{
		NextAddress: 0x4242, LogID: "remote-log",
		RangeStart: 0, RangeEnd: ^uint64(0), HashBucket: h,
	})
	if st := sess.SpliceIndirection(h, payload); st != StatusOK {
		t.Fatalf("splice: %v", st)
	}
	if st := sess.Read(probe, nil); st != StatusIndirection {
		t.Fatalf("read before compaction: %v, want StatusIndirection", st)
	}

	// Filler traffic pushes the indirection record into the stable prefix.
	for i := 0; i < 2000; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%05d", i)), val(i), nil)
	}
	lg := s.Log()
	if lg.SafeHeadAddress() == 0 {
		t.Fatal("no stable region formed")
	}

	st, err := sess.Compact(lg.SafeHeadAddress(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatalf("compaction dropped nothing: %+v", st)
	}
	if got := sess.Read(probe, nil); got != StatusNotFound {
		t.Fatalf("read after compaction: %v, want StatusNotFound (indirection dropped)", got)
	}
	// Filler keys copied forward must still be served.
	if got, stt := mustRead(t, sess, []byte("filler-00000")); stt != StatusOK || string(got) != string(val(0)) {
		t.Fatalf("filler key after compaction: %v %q", stt, got)
	}
}
