package faster

import (
	"sync"
	"sync/atomic"

	"repro/internal/hlog"
)

// Ownership fences (§3.3): when a server re-acquires a hash range it owned
// before — migration ping-pong, or residue from a cancelled inbound
// migration — its log and index still hold records for that range from the
// earlier tenancy. Those records are stale by construction: every write the
// range took while owned elsewhere lives on the other server, and the
// migration ships the authoritative versions over. But ConditionalInsert
// drops a shipped record whenever any local version of the key exists, and
// the read path serves whatever the chain walk finds — so without a fence
// the stale leftovers shadow the fresh data and acknowledged writes vanish.
//
// A Fence marks every record with hash in [Start, End) at a log address
// below Below as dead. It is laid down the moment the server becomes an
// inbound-migration target, with Below = the log's tail at that instant:
// everything already in the log predates the migration (stale), everything
// shipped or newly written lands above the fence (live). Hash chains walk
// addresses strictly downward, so a walk simply stops when it crosses the
// fence — the cut is sound without touching any record.
type Fence struct {
	Start, End uint64       // hash range [Start, End)
	Below      hlog.Address // records below this address in the range are dead
}

// fenceSet is the store's copy-on-write fence list: readers load the
// current slice atomically (the no-fence fast path is one pointer load),
// writers swap in a rebuilt slice under fenceMu.
type fenceSet struct {
	mu sync.Mutex
	p  atomic.Pointer[[]Fence]
}

// AddFence lays down an ownership fence: records with hash in [start, end)
// at addresses below below become invisible to every lookup, conditional
// insert, collection and compaction pass. Fences accumulate per inbound
// migration; a new fence supersedes earlier ones it fully covers (Below
// values are log tails, so later fences never sit lower).
func (s *Store) AddFence(start, end uint64, below hlog.Address) {
	if start >= end || below == hlog.InvalidAddress {
		return
	}
	s.fences.mu.Lock()
	defer s.fences.mu.Unlock()
	var cur []Fence
	if p := s.fences.p.Load(); p != nil {
		cur = *p
	}
	next := make([]Fence, 0, len(cur)+1)
	for _, f := range cur {
		if f.Start >= start && f.End <= end && f.Below <= below {
			continue // fully superseded by the new fence
		}
		next = append(next, f)
	}
	next = append(next, Fence{Start: start, End: end, Below: below})
	s.fences.p.Store(&next)
}

// Fences returns a snapshot of the live fence set (checkpointing: fences
// must survive recovery, or the recovered log re-exposes the stale records
// they retired).
func (s *Store) Fences() []Fence {
	p := s.fences.p.Load()
	if p == nil {
		return nil
	}
	out := make([]Fence, len(*p))
	copy(out, *p)
	return out
}

// RestoreFences reinstates a checkpointed fence set (recovery).
func (s *Store) RestoreFences(fs []Fence) {
	s.fences.mu.Lock()
	defer s.fences.mu.Unlock()
	if len(fs) == 0 {
		s.fences.p.Store(nil)
		return
	}
	next := make([]Fence, len(fs))
	copy(next, fs)
	s.fences.p.Store(&next)
}

// FenceBelow reports the address below which records for hash are retired
// (InvalidAddress when unfenced). It exists for the migration disk scan,
// which reads raw pages outside any session and must apply the same filter
// CollectChain does.
func (s *Store) FenceBelow(hash uint64) hlog.Address { return s.fenceBelow(hash) }

// fenceBelow returns the address below which records for hash are dead
// (InvalidAddress when unfenced — no record sits below the null address, so
// the zero value disables the check).
func (s *Store) fenceBelow(hash uint64) hlog.Address {
	p := s.fences.p.Load()
	if p == nil {
		return hlog.InvalidAddress
	}
	below := hlog.InvalidAddress
	for _, f := range *p {
		if hash >= f.Start && hash < f.End && f.Below > below {
			below = f.Below
		}
	}
	return below
}
