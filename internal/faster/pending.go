package faster

import (
	"bytes"

	"repro/internal/hlog"
)

// opKind distinguishes pending-operation continuations.
type opKind uint8

const (
	opRead opKind = iota
	opRMW
	opCondInsert
)

// pendingOp is an operation suspended on storage I/O. The continuation
// walks the on-storage portion of the hash chain one record read at a time,
// exactly as FASTER's pending contexts do.
type pendingOp struct {
	kind  opKind
	key   []byte
	hash  uint64
	addr  hlog.Address // next chain address to read from the device
	input []byte       // RMW input / conditional-insert value
	meta  hlog.Meta    // conditional-insert record flags
	cb    Callback
}

// issueRead starts an asynchronous device read of the record at p.addr. The
// device callback parses the record (issuing a follow-up read if the record
// is longer than the hint) and then queues the continuation onto the
// session's completion channel.
func (sess *Session) issueRead(p *pendingOp) {
	sess.inflight.Add(1)
	sess.s.stats.PendingIssued.Add(1)
	lg := sess.s.log
	go func() {
		rec, err := lg.ReadRecordFromDevice(p.addr, sess.s.cfg.ReadHintBytes+len(p.key))
		sess.completions <- func() { sess.resume(p, rec, err) }
	}()
}

// resume continues a pending operation with the record read from storage.
// It runs on the session goroutine (inside CompletePending).
func (sess *Session) resume(p *pendingOp, rec hlog.Record, err error) {
	sess.inflight.Add(-1)
	if err != nil {
		invoke(p.cb, StatusError, nil)
		return
	}
	m := rec.Meta()
	match := !m.Invalid() && !m.Indirection() && bytes.Equal(rec.Key(), p.key)

	switch p.kind {
	case opRead:
		if match {
			if m.Tombstone() {
				invoke(p.cb, StatusNotFound, nil)
				return
			}
			invoke(p.cb, StatusOK, rec.Value())
			return
		}
		if m.Indirection() && !m.Invalid() {
			if ip, ok := hlog.DecodeIndirection(rec.Value()); ok &&
				p.hash >= ip.RangeStart && p.hash < ip.RangeEnd {
				invoke(p.cb, StatusIndirection, rec.Value())
				return
			}
		}
		sess.followOrFinish(p, m, func() { invoke(p.cb, StatusNotFound, nil) })

	case opRMW:
		// The chain may have gained an in-memory version while the read
		// was in flight; prefer memory (it is strictly newer).
		slot := sess.s.index.FindOrCreateEntry(p.hash)
		res := sess.walkMemory(slot, p.key, p.hash)
		if res.status != walkBelowHead {
			sess.rmwFrom(slot, p.key, p.hash, p.input, p.cb)
			return
		}
		if match {
			var old []byte
			if !m.Tombstone() {
				old = rec.Value()
			}
			sess.finishRMWWithValue(p, old)
			return
		}
		if m.Indirection() && !m.Invalid() {
			if ip, ok := hlog.DecodeIndirection(rec.Value()); ok &&
				p.hash >= ip.RangeStart && p.hash < ip.RangeEnd {
				invoke(p.cb, StatusIndirection, rec.Value())
				return
			}
		}
		sess.followOrFinish(p, m, func() { sess.finishRMWWithValue(p, nil) })

	case opCondInsert:
		if match {
			// A version (even a tombstone) exists: the incoming migrated
			// record is older; drop it.
			invoke(p.cb, StatusNotFound, nil)
			return
		}
		sess.followOrFinish(p, m, func() { sess.finishCondInsert(p) })
	}
}

// followOrFinish either issues the next chain read or, at the chain's end,
// runs atEnd.
func (sess *Session) followOrFinish(p *pendingOp, m hlog.Meta, atEnd func()) {
	prev := m.Previous()
	if prev == hlog.InvalidAddress || prev < sess.s.log.BeginAddress() {
		atEnd()
		return
	}
	p.addr = prev
	sess.issueRead(p)
}

// finishRMWWithValue applies the RMW against the storage-resident value (nil
// when absent) and appends the result, retrying against memory if the chain
// head moved.
func (sess *Session) finishRMWWithValue(p *pendingOp, old []byte) {
	var newVal []byte
	if old == nil {
		newVal = sess.s.rmw.Initial(p.input)
	} else {
		newVal = sess.s.rmw.Apply(old, p.input)
	}
	slot := sess.s.index.FindOrCreateEntry(p.hash)
	for {
		res := sess.walkMemory(slot, p.key, p.hash)
		if res.status != walkBelowHead {
			// Memory changed while we worked: recompute from memory.
			sess.rmwFrom(slot, p.key, p.hash, p.input, p.cb)
			return
		}
		if sess.appendRMW(res, p.key, newVal) {
			invoke(p.cb, StatusOK, nil)
			return
		}
	}
}

// finishCondInsert installs the migrated record now that the full chain was
// checked without finding the key.
func (sess *Session) finishCondInsert(p *pendingOp) {
	slot := sess.s.index.FindOrCreateEntry(p.hash)
	for {
		res := sess.walkMemory(slot, p.key, p.hash)
		switch res.status {
		case walkFound, walkTombstone:
			invoke(p.cb, StatusNotFound, nil)
			return
		case walkBelowHead:
			// The chain gained new storage-resident links (eviction moved
			// head); re-verifying from storage would loop, and a young
			// target log has already been checked: install.
			fallthrough
		case walkNotFound:
			if sess.condAppend(res, p.key, p.input, p.meta.Tombstone()) {
				invoke(p.cb, StatusOK, nil)
				return
			}
		}
	}
}
