package faster

import (
	"bytes"

	"repro/internal/hlog"
)

// opKind distinguishes pending-operation continuations.
type opKind uint8

const (
	opRead opKind = iota
	opRMW
	opCondInsert
)

// pendingOp is an operation suspended on storage I/O. The continuation
// walks the on-storage portion of the hash chain one record read at a time,
// exactly as FASTER's pending contexts do.
//
// pendingOps are pooled per session (key/input buffers are reused) and flow
// back to the session goroutine through the completions channel; the device
// read's bytes ride the op's ioEntry — completing an I/O allocates nothing.
type pendingOp struct {
	kind  opKind
	key   []byte
	hash  uint64
	addr  hlog.Address // next chain address to read from the device
	input []byte       // RMW input / conditional-insert value
	meta  hlog.Meta    // conditional-insert record flags
	comp  completion

	// ent is the pipeline read serving this op (shared with coalesced
	// waiters); rec is the parsed record, aliasing ent's span buffer.
	ent *ioEntry
	rec hlog.Record
	err error
}

// pendingOpPoolCap bounds how many recycled pending ops a session retains;
// pendingOpBufKeep is the largest key/input buffer capacity kept across
// recycling (one conditional-insert of a huge migrated value should not pin
// its footprint in the pool for the session's lifetime).
const (
	pendingOpPoolCap = 128
	pendingOpBufKeep = 8 << 10
)

// newPendingOp takes a pending op from the session's pool (or allocates one)
// and fills it, copying key and input into the op's reused buffers: the
// caller's batch buffers will be recycled long before the I/O completes.
func (sess *Session) newPendingOp(kind opKind, key, input []byte, hash uint64,
	addr hlog.Address, comp completion) *pendingOp {
	var p *pendingOp
	if n := len(sess.opFree); n > 0 {
		p = sess.opFree[n-1]
		sess.opFree[n-1] = nil
		sess.opFree = sess.opFree[:n-1]
	} else {
		p = new(pendingOp)
	}
	p.kind = kind
	p.key = append(p.key[:0], key...)
	p.input = append(p.input[:0], input...)
	p.hash = hash
	p.addr = addr
	p.meta = 0
	p.comp = comp
	return p
}

// freePendingOp recycles p. Only the terminal paths call it; a reissued op
// (follow) keeps its struct.
func (sess *Session) freePendingOp(p *pendingOp) {
	sess.releaseEntry(p.ent)
	p.ent = nil
	p.comp = completion{}
	p.rec, p.err = nil, nil
	if cap(p.key) > pendingOpBufKeep {
		p.key = nil
	}
	if cap(p.input) > pendingOpBufKeep {
		p.input = nil
	}
	if len(sess.opFree) < pendingOpPoolCap {
		sess.opFree = append(sess.opFree, p)
	}
}

// finishPending recycles p and delivers its final result. The value may
// alias p's span buffer (pooled), so the entry reference is held until the
// delivery returns — a re-entrant operation issued from the completion
// handler must not be able to recycle the buffer under the value.
func (sess *Session) finishPending(p *pendingOp, st Status, v []byte) {
	comp := p.comp
	ent := p.ent
	p.ent = nil
	sess.freePendingOp(p)
	sess.deliver(comp, st, v)
	sess.releaseEntry(ent)
}

// finishOrRelease delivers a terminal result, or — when a continuation
// re-entered the state machine and went pending again under a fresh op that
// inherited p's completion — just recycles p.
func (sess *Session) finishOrRelease(p *pendingOp, st Status, v []byte) {
	if st == StatusPending {
		sess.freePendingOp(p)
		return
	}
	sess.finishPending(p, st, v)
}

// resume continues a pending operation with the record read from storage.
// It runs on the session goroutine (inside CompletePending). Chain hops that
// landed inside the span buffer already read are served inline (the loop
// continues); hops outside it re-enter the pipeline queue.
func (sess *Session) resume(p *pendingOp) {
	sess.inflight.Add(-1)
	if !sess.materializeRec(p) {
		return // long record: re-queued as a continuation read
	}
	for {
		if p.err != nil {
			sess.finishPending(p, StatusError, nil)
			return
		}
		if p.addr < sess.s.fenceBelow(p.hash) {
			// An ownership fence retired this depth of the chain (it may have
			// been laid down while the read was in flight): the record and
			// everything deeper are stale — finish as if the chain ended.
			switch p.kind {
			case opRead:
				sess.finishPending(p, StatusNotFound, nil)
			case opRMW:
				st, v := sess.finishRMWWithValue(p, nil)
				sess.finishOrRelease(p, st, v)
			case opCondInsert:
				sess.finishCondInsert(p)
			}
			return
		}
		rec := p.rec
		m := rec.Meta()
		match := !m.Invalid() && !m.Indirection() && bytes.Equal(rec.Key(), p.key)

		switch p.kind {
		case opRead:
			if match {
				if m.Tombstone() {
					sess.finishPending(p, StatusNotFound, nil)
					return
				}
				sess.maybeCachePromote(p)
				sess.finishPending(p, StatusOK, rec.Value())
				return
			}
			if m.Indirection() && !m.Invalid() {
				if ip, ok := hlog.DecodeIndirection(rec.Value()); ok &&
					p.hash >= ip.RangeStart && p.hash < ip.RangeEnd {
					sess.finishPending(p, StatusIndirection, rec.Value())
					return
				}
			}
			switch sess.follow(p, m) {
			case followEnd:
				sess.finishPending(p, StatusNotFound, nil)
				return
			case followIssued:
				return
			}

		case opRMW:
			// The chain may have gained an in-memory version while the read
			// was in flight; prefer memory (it is strictly newer).
			slot := sess.s.index.FindOrCreateEntry(p.hash)
			res := sess.walkMemory(slot, p.key, p.hash)
			if res.status != walkBelowHead {
				st, v := sess.rmwFrom(slot, p.key, p.hash, p.input, p.comp)
				sess.finishOrRelease(p, st, v)
				return
			}
			if match {
				var old []byte
				if !m.Tombstone() {
					old = rec.Value()
				}
				st, v := sess.finishRMWWithValue(p, old)
				sess.finishOrRelease(p, st, v)
				return
			}
			if m.Indirection() && !m.Invalid() {
				if ip, ok := hlog.DecodeIndirection(rec.Value()); ok &&
					p.hash >= ip.RangeStart && p.hash < ip.RangeEnd {
					sess.finishPending(p, StatusIndirection, rec.Value())
					return
				}
			}
			switch sess.follow(p, m) {
			case followEnd:
				st, v := sess.finishRMWWithValue(p, nil)
				sess.finishOrRelease(p, st, v)
				return
			case followIssued:
				return
			}

		case opCondInsert:
			if match {
				// A version (even a tombstone) exists: the incoming migrated
				// record is older; drop it.
				sess.finishPending(p, StatusNotFound, nil)
				return
			}
			switch sess.follow(p, m) {
			case followEnd:
				sess.finishCondInsert(p)
				return
			case followIssued:
				return
			}
		}
		// followInline: p.addr/p.rec advanced within the span — loop.
	}
}

// followResult says how a chain hop proceeded.
type followResult uint8

const (
	followEnd    followResult = iota // chain exhausted: caller finishes the op
	followInline                     // hop served from the span already read
	followIssued                     // hop re-entered the pipeline queue
)

// follow advances p one chain hop. A predecessor that landed inside the span
// buffer already read is served inline — same-page predecessors sit at lower
// addresses, which is exactly what the span's read-behind covers — otherwise
// the op re-enters the pipeline queue rather than blocking anything for the
// round trip.
func (sess *Session) follow(p *pendingOp, m hlog.Meta) followResult {
	prev := m.Previous()
	if prev == hlog.InvalidAddress || prev < sess.s.log.BeginAddress() ||
		prev < sess.s.fenceBelow(p.hash) {
		return followEnd
	}
	p.addr = prev
	if ent := p.ent; ent != nil && uint64(prev) >= ent.pos {
		// Records are laid out sequentially within a page, so a same-span
		// predecessor is always complete: [prev, prev+size) ends at or
		// before the record just examined.
		rec, _, err := hlog.ParseSpanRecord(ent.buf, int(uint64(prev)-ent.pos), prev, sess.s.log.PageBits())
		if err == nil && rec != nil {
			p.rec = rec
			sess.s.stats.ReadaheadHits.Add(1)
			return followInline
		}
	}
	p.rec = nil
	sess.releaseEntry(p.ent)
	p.ent = nil
	sess.enqueueRead(p)
	return followIssued
}

// finishRMWWithValue applies the RMW against the storage-resident value (nil
// when absent) and appends the result, retrying against memory if the chain
// head moved. Like rmwFrom it returns the terminal status instead of
// delivering it; a StatusPending return means a fresh op inherited p.comp.
func (sess *Session) finishRMWWithValue(p *pendingOp, old []byte) (Status, []byte) {
	var newVal []byte
	if old == nil {
		newVal = sess.s.rmw.Initial(p.input)
	} else {
		newVal = sess.s.rmw.Apply(old, p.input)
	}
	slot := sess.s.index.FindOrCreateEntry(p.hash)
	for {
		res := sess.walkMemory(slot, p.key, p.hash)
		if res.status != walkBelowHead {
			// Memory changed while we worked: recompute from memory.
			return sess.rmwFrom(slot, p.key, p.hash, p.input, p.comp)
		}
		if sess.appendRMW(res, p.key, newVal) {
			return StatusOK, nil
		}
	}
}

// finishCondInsert installs the migrated record now that the full chain was
// checked without finding the key.
func (sess *Session) finishCondInsert(p *pendingOp) {
	slot := sess.s.index.FindOrCreateEntry(p.hash)
	for {
		res := sess.walkMemory(slot, p.key, p.hash)
		switch res.status {
		case walkFound, walkTombstone:
			sess.finishPending(p, StatusNotFound, nil)
			return
		case walkIndirection:
			// The chain gained an indirection record while we worked; the
			// migrated record is at least as new as the remote suffix the
			// indirection defers to, so install in front (same decision as
			// ConditionalInsert's inline path).
			if sess.condAppend(res, p.key, p.input, p.meta.Tombstone()) {
				sess.finishPending(p, StatusOK, nil)
				return
			}
		case walkBelowHead:
			// The chain gained new storage-resident links (eviction moved
			// head); re-verifying from storage would loop, and a young
			// target log has already been checked: install.
			fallthrough
		case walkNotFound:
			if sess.condAppend(res, p.key, p.input, p.meta.Tombstone()) {
				sess.finishPending(p, StatusOK, nil)
				return
			}
		}
	}
}
