package faster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/hlog"
	"repro/internal/storage"
)

func TestCheckpointRecoverQuiesced(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	cfg := Config{
		IndexBuckets: 1 << 10,
		Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "ckpt"},
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sess := s.NewSession()
	const n = 2500 // spills to "SSD"
	for i := 0; i < n; i++ {
		sess.Upsert(key(i), val(i), nil)
	}
	sess.Delete(key(3), nil)
	sess.Close()

	var blob bytes.Buffer
	info, err := s.CheckpointSync(&blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Tail == 0 {
		t.Fatalf("checkpoint info: %+v", info)
	}
	s.Close() // "crash": memory gone, device + blob survive

	cfg2 := cfg
	cfg2.Log.Epoch = nil
	r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.CurrentVersion() != 2 {
		t.Fatalf("recovered version %d, want 2", r.CurrentVersion())
	}

	rs := r.NewSession()
	defer rs.Close()
	for i := 0; i < n; i++ {
		got, st := mustRead(t, rs, key(i))
		if i == 3 {
			if st != StatusNotFound {
				t.Fatalf("deleted key %d resurrected: %v", i, st)
			}
			continue
		}
		if st != StatusOK || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after recovery: %v %q", i, st, got)
		}
	}
	// The recovered store accepts new writes.
	rs.Upsert([]byte("post-recovery"), []byte("yes"), nil)
	got, st := mustRead(t, rs, []byte("post-recovery"))
	if st != StatusOK || string(got) != "yes" {
		t.Fatal("recovered store rejects writes")
	}
}

func TestCheckpointWhileConcurrentWrites(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	cfg := Config{
		IndexBuckets: 1 << 10,
		Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "ckpt2"},
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: stable prefix that the checkpoint must capture.
	sess := s.NewSession()
	const stable = 1000
	for i := 0; i < stable; i++ {
		sess.Upsert(key(i), val(i), nil)
	}
	sess.Close()

	// Phase 2: checkpoint while other threads keep writing disjoint keys.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := s.NewSession()
			defer ws.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ws.Upsert([]byte(fmt.Sprintf("conc-%d-%d", w, i)), val(i), nil)
				i++
				ws.Refresh()
			}
		}(w)
	}
	var blob bytes.Buffer
	if _, err := s.CheckpointSync(&blob); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	s.Close()

	cfg2 := cfg
	cfg2.Log.Epoch = nil
	r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	// Everything written before the checkpoint started must be present.
	for i := 0; i < stable; i++ {
		got, st := mustRead(t, rs, key(i))
		if st != StatusOK || !bytes.Equal(got, val(i)) {
			t.Fatalf("pre-cut key %d lost: %v %q", i, st, got)
		}
	}
}

// TestCheckpointCutExcludesPostCutOps pins the CPR version semantics the
// server's exactly-once session replay depends on: operations performed
// after a thread crosses the checkpoint cut are stamped with the next
// version, and even though the fuzzy image absorbs their records, recovery's
// version filter drops them. Without this, a post-cut RMW would be both in
// the recovered state and above the checkpointed session table's durable
// prefix — and get applied twice after client replay.
func TestCheckpointCutExcludesPostCutOps(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	cfg := Config{
		IndexBuckets: 1 << 10,
		Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "cut"},
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()

	// Pre-cut state (version 1): a counter at 5, a key that will be deleted
	// post-cut, and a plain key that will be overwritten post-cut.
	for i := 0; i < 5; i++ {
		sess.RMW([]byte("counter"), delta(1), nil)
	}
	sess.Upsert([]byte("survivor"), []byte("pre-cut"), nil)
	sess.Upsert([]byte("stable"), []byte("old"), nil)

	cutFired := make(chan uint32, 1)
	postCutDone := make(chan struct{})
	type outcome struct {
		info CheckpointInfo
		err  error
	}
	res := make(chan outcome, 1)
	var blob bytes.Buffer
	s.CheckpointCut(&blob,
		func(sealed uint32) {
			cutFired <- sealed
			<-postCutDone // hold the image write until post-cut ops landed
		},
		func(info CheckpointInfo, err error) { res <- outcome{info, err} })

	// Cross the cut, then race operations into the flush window: they are
	// stamped version 2 and will be absorbed by the fuzzy image.
	sess.Refresh()
	sealed := <-cutFired
	if sealed != 1 {
		t.Fatalf("sealed version %d, want 1", sealed)
	}
	for i := 0; i < 3; i++ {
		sess.RMW([]byte("counter"), delta(1), nil) // would make it 8
	}
	sess.Delete([]byte("survivor"), nil)
	sess.Upsert([]byte("stable"), []byte("new"), nil)
	sess.Upsert([]byte("post-cut-key"), []byte("x"), nil)
	close(postCutDone)

	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	sess.Close()
	s.Close()

	cfg2 := cfg
	cfg2.Log.Epoch = nil
	r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()

	// The recovered state must be exactly the version-1 prefix.
	got, st := mustRead(t, rs, []byte("counter"))
	if st != StatusOK || leU64(got) != 5 {
		t.Fatalf("counter after recovery: %v %d, want 5 (post-cut RMWs excluded)", st, leU64(got))
	}
	if got, st := mustRead(t, rs, []byte("survivor")); st != StatusOK || string(got) != "pre-cut" {
		t.Fatalf("post-cut delete leaked into the image: %v %q", st, got)
	}
	if got, st := mustRead(t, rs, []byte("stable")); st != StatusOK || string(got) != "old" {
		t.Fatalf("post-cut overwrite leaked into the image: %v %q", st, got)
	}
	if _, st := mustRead(t, rs, []byte("post-cut-key")); st != StatusNotFound {
		t.Fatalf("post-cut insert leaked into the image: %v", st)
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 1)
	defer dev.Close()
	cfg := Config{Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8, Device: dev}}
	if _, err := Recover(cfg, bytes.NewReader([]byte("not a checkpoint blob......."))); err == nil {
		t.Fatal("garbage blob accepted")
	}
	if _, err := Recover(cfg, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty blob accepted")
	}
}

func TestCompaction(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	// Overwrite each key several times so the stable prefix is mostly
	// stale, then delete a few.
	const n = 600
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			sess.Upsert(key(i), []byte(fmt.Sprintf("r%d-%s", round, val(i))), nil)
		}
	}
	for i := 0; i < 10; i++ {
		sess.Delete(key(i), nil)
	}
	lg := s.Log()
	if lg.SafeHeadAddress() == 0 {
		t.Fatal("nothing evicted; compaction test needs a stable region")
	}

	st, err := sess.Compact(lg.SafeHeadAddress(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned == 0 || st.Dropped == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
	if lg.BeginAddress() <= hlog.MinAddress {
		t.Fatal("begin address did not advance")
	}

	// All data intact after compaction.
	for i := 0; i < n; i++ {
		got, stt := mustRead(t, sess, key(i))
		if i < 10 {
			if stt != StatusNotFound {
				t.Fatalf("deleted key %d resurrected after compaction", i)
			}
			continue
		}
		want := fmt.Sprintf("r3-%s", val(i))
		if stt != StatusOK || string(got) != want {
			t.Fatalf("key %d after compaction: %v %q want %q", i, stt, got, want)
		}
	}
}

func TestCompactionRelocatesDisowned(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	// One version per key, then filler traffic on other keys so the keyed
	// records land in the stable prefix as their keys' newest versions.
	const n = 600
	for i := 0; i < n; i++ {
		sess.Upsert(key(i), val(i), nil)
	}
	for i := 0; i < 3*n; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%05d", i)), val(i), nil)
	}
	lg := s.Log()
	if lg.SafeHeadAddress() == 0 {
		t.Skip("no stable region formed")
	}
	// Disown the lower half of the hash space.
	mid := uint64(1) << 63
	var relocated []CollectedRecord
	st, err := sess.Compact(lg.SafeHeadAddress(),
		func(h uint64) bool { return h >= mid },
		func(r CollectedRecord) bool { relocated = append(relocated, r); return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Relocated == 0 || len(relocated) != st.Relocated {
		t.Fatalf("relocation accounting: %+v vs %d", st, len(relocated))
	}
	for _, r := range relocated {
		if r.Hash >= mid {
			t.Fatal("relocated an owned record")
		}
		if len(r.Key) == 0 {
			t.Fatal("relocated record missing key")
		}
	}
}

// TestCompactionRelocatesOnlyNewest: a disowned key whose stable prefix
// holds several versions must be relocated exactly once, with the newest
// value — the receiver installs conditionally, so a stale version arriving
// first would shadow the newest forever.
func TestCompactionRelocatesOnlyNewest(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	const n = 400
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			sess.Upsert(key(i), []byte(fmt.Sprintf("r%d-%s", round, val(i))), nil)
		}
	}
	// Filler traffic evicts all three rounds into the stable prefix.
	for i := 0; i < 3*n; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%05d", i)), val(i), nil)
	}
	lg := s.Log()
	if lg.SafeHeadAddress() == 0 {
		t.Skip("no stable region formed")
	}
	seen := make(map[string][]byte)
	st, err := sess.Compact(lg.SafeHeadAddress(),
		func(h uint64) bool { return false }, // disown everything
		func(r CollectedRecord) bool {
			if prior, dup := seen[string(r.Key)]; dup {
				t.Fatalf("key %q relocated twice (%q then %q)", r.Key, prior, r.Value)
			}
			seen[string(r.Key)] = append([]byte(nil), r.Value...)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Relocated == 0 {
		t.Fatalf("nothing relocated: %+v", st)
	}
	for i := 0; i < n; i++ {
		got, ok := seen[string(key(i))]
		if !ok {
			continue // newest version still in memory; not in this pass's range
		}
		want := fmt.Sprintf("r2-%s", val(i))
		if string(got) != want {
			t.Fatalf("key %d relocated stale version %q, want %q", i, got, want)
		}
	}
}

func BenchmarkUpsertInMemory(b *testing.B) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	s, err := NewStore(Config{
		IndexBuckets: 1 << 16,
		Log: hlog.Config{PageBits: 20, MemPages: 64, MutablePages: 32,
			Device: dev},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()
	keys := make([][]byte, 1<<14)
	for i := range keys {
		keys[i] = key(i)
	}
	v := val(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Upsert(keys[i&(len(keys)-1)], v, nil)
	}
}

func BenchmarkRMWInMemory(b *testing.B) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	s, err := NewStore(Config{
		IndexBuckets: 1 << 16,
		Log: hlog.Config{PageBits: 20, MemPages: 64, MutablePages: 32,
			Device: dev},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()
	keys := make([][]byte, 1<<14)
	for i := range keys {
		keys[i] = key(i)
	}
	d := delta(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.RMW(keys[i&(len(keys)-1)], d, nil)
	}
}

func BenchmarkReadInMemory(b *testing.B) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	s, err := NewStore(Config{
		IndexBuckets: 1 << 16,
		Log: hlog.Config{PageBits: 20, MemPages: 64, MutablePages: 32,
			Device: dev},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()
	keys := make([][]byte, 1<<14)
	for i := range keys {
		keys[i] = key(i)
		sess.Upsert(keys[i], val(i), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Read(keys[i&(len(keys)-1)], nil)
	}
}
