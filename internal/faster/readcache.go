package faster

// Second-chance read cache (PR 8). A record that lives below the HybridLog
// head is re-fetched from the device on every access; for a skewed workload
// whose hot set does not fit in memory that device round trip dominates
// cold-read latency. The cache copies such records back into the mutable
// region through the ordinary append path — a cached copy is just a newer
// record with the same value, so fences, CPR version stamps, compaction and
// migration treat it exactly like any other append and correctness falls out
// of the chain discipline.
//
// Promotion is probabilistic for scan resistance: the first disk hit on a
// key only sets its tag in a fixed-size second-chance filter; only a key
// seen again while its tag survives earns the copy. A one-pass scan touches
// every key once and promotes nothing.

// cacheTag derives a non-zero filter tag from a key hash. Filter slots are
// indexed by the hash's low bits, so the tag draws on the high bits; zero is
// reserved for "empty".
func cacheTag(hash uint64) uint32 { return uint32(hash>>32) | 1 }

// maybeCachePromote runs on the session goroutine after a disk-resident read
// hit (resume, opRead match). p.rec aliases the op's span buffer, which stays
// valid for the duration of the call.
func (sess *Session) maybeCachePromote(p *pendingOp) {
	s := sess.s
	if s.cacheSeen == nil {
		return
	}
	i := p.hash & s.cacheMask
	tag := cacheTag(p.hash)
	slot := &s.cacheSeen[i]
	if slot.Load() != tag {
		slot.Store(tag) // first touch: second-chance bit only
		return
	}
	slot.Store(0)
	// Re-verify that the key's chain still ends on storage at exactly the
	// record we read: anything newer in memory (a concurrent upsert, a
	// migration ConditionalInsert) supersedes the copy, and a fence laid
	// while the read was in flight retires it.
	idx := s.index.FindOrCreateEntry(p.hash)
	res := sess.walkMemory(idx, p.key, p.hash)
	if res.status != walkBelowHead || res.addr != p.addr {
		return
	}
	if p.addr < s.fenceBelow(p.hash) {
		return
	}
	if sess.appendPromote(res, p.key, p.rec.Value()) {
		s.stats.ReadCacheCopies.Add(1)
		s.cachePromoted[i].Store(tag)
	}
}

// appendPromote appends the cached copy and installs it as the chain head
// with a single-shot CAS; failure invalidates the copy and gives up — a
// promote must never race ahead of whatever just moved the chain.
func (sess *Session) appendPromote(res walkResult, key, value []byte) bool {
	addr, rec, err := sess.append(res.entry.Address(), key, value, false)
	if err != nil {
		return false
	}
	if res.slot.CompareAndSwap(res.entry, newEntryFor(res.hash, addr)) {
		return true
	}
	rec.SetMeta(rec.Meta().WithInvalid())
	return false
}

// noteCacheHit counts an in-memory read hit on a key the cache promoted.
// Tag-based and therefore approximate (a collision or an independent write
// making the key resident counts too); the counter tracks how much of the
// memory-hit rate the cache is plausibly responsible for.
func (s *Store) noteCacheHit(hash uint64) {
	if s.cachePromoted != nil &&
		s.cachePromoted[hash&s.cacheMask].Load() == cacheTag(hash) {
		s.stats.ReadCacheHits.Add(1)
	}
}
