package hashidx

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hashfn"
	"repro/internal/hlog"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 3, 12, -8} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
	if _, err := New(16); err != nil {
		t.Fatal(err)
	}
}

func TestEntryPacking(t *testing.T) {
	f := func(tag uint16, addr uint64, tentative bool) bool {
		tag &= (1 << tagBits) - 1
		a := hlog.Address(addr & addrMask)
		e := packEntry(tag, a, tentative)
		return e.Tag() == tag && e.Address() == a && e.Tentative() == tentative
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindAbsent(t *testing.T) {
	ix, _ := New(64)
	if s := ix.FindEntry(hashfn.Hash64(99)); s.Valid() {
		t.Fatal("found an entry in an empty index")
	}
}

func TestFindOrCreateThenFind(t *testing.T) {
	ix, _ := New(64)
	h := hashfn.Hash64(1)
	s := ix.FindOrCreateEntry(h)
	if !s.Valid() {
		t.Fatal("create failed")
	}
	if e := s.Load(); e.Address() != hlog.InvalidAddress || e.Tentative() {
		t.Fatalf("fresh entry should be committed with invalid address: %#x", e)
	}
	// CAS an address in.
	if !s.CompareAndSwap(s.Load(), packEntry(TagOf(h), hlog.Address(4096), false)) {
		t.Fatal("CAS failed")
	}
	s2 := ix.FindEntry(h)
	if !s2.Valid() || s2.Load().Address() != hlog.Address(4096) {
		t.Fatal("re-find did not see the address")
	}
	// FindOrCreate must return the same entry, not create another.
	s3 := ix.FindOrCreateEntry(h)
	if s3.p != s2.p {
		t.Fatal("FindOrCreate duplicated an existing entry")
	}
}

func TestOverflowChains(t *testing.T) {
	// 1 main bucket forces everything through overflow chains.
	ix, _ := New(1)
	const n = 200
	slots := make(map[uint64]Slot)
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindOrCreateEntry(h)
		s.CompareAndSwap(s.Load(), packEntry(TagOf(h), hlog.Address(64+i*8), false))
		slots[i] = s
	}
	// All entries findable with correct addresses. Distinct keys can share a
	// tag (chain collision), in which case they legitimately share an entry,
	// so check via the slot map instead of assuming distinctness.
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindEntry(h)
		if !s.Valid() {
			t.Fatalf("key %d vanished", i)
		}
		if s.p != slots[i].p {
			t.Fatalf("key %d resolved to a different slot", i)
		}
	}
	if st := ix.Stats(); st.OverflowBuckets == 0 {
		t.Fatal("expected overflow buckets")
	}
}

func TestConcurrentFindOrCreateConverges(t *testing.T) {
	// Many goroutines race to create the same small key set; every key must
	// end with exactly one committed entry.
	ix, _ := New(4)
	const keys = 16
	const workers = 8
	var wg sync.WaitGroup
	slotsCh := make(chan [keys]Slot, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine [keys]Slot
			for i := 0; i < keys; i++ {
				mine[i] = ix.FindOrCreateEntry(hashfn.Hash64(uint64(i)))
			}
			slotsCh <- mine
		}()
	}
	wg.Wait()
	close(slotsCh)
	var first [keys]Slot
	got := false
	for mine := range slotsCh {
		if !got {
			first = mine
			got = true
			continue
		}
		for i := range mine {
			if mine[i].p != first[i].p {
				t.Fatalf("key %d: racing creators got different entries", i)
			}
		}
	}
	// No tentative entries must survive.
	ix.ForEachEntryInBuckets(0, ix.NumBuckets(), func(_ uint64, s Slot) bool {
		if s.Load().Tentative() {
			t.Error("tentative entry leaked")
		}
		return true
	})
}

func TestConcurrentInsertAndUpdate(t *testing.T) {
	ix, _ := New(256)
	const keys = 2000
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += workers {
				h := hashfn.Hash64(uint64(i))
				s := ix.FindOrCreateEntry(h)
				for {
					old := s.Load()
					if s.CompareAndSwap(old, packEntry(TagOf(h), hlog.Address(64+uint64(i)), false)) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key readable; address plausibly set (tag collisions mean last
	// writer wins on shared entries, but the address must be one of ours).
	for i := 0; i < keys; i++ {
		h := hashfn.Hash64(uint64(i))
		s := ix.FindEntry(h)
		if !s.Valid() {
			t.Fatalf("key %d missing", i)
		}
		a := uint64(s.Load().Address())
		if a < 64 || a >= 64+keys {
			t.Fatalf("key %d has foreign address %d", i, a)
		}
	}
}

func TestForEachEntryInBuckets(t *testing.T) {
	ix, _ := New(64)
	const n = 500
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindOrCreateEntry(h)
		s.CompareAndSwap(s.Load(), packEntry(TagOf(h), hlog.Address(64+i), false))
	}
	seen := 0
	ix.ForEachEntryInBuckets(0, ix.NumBuckets(), func(b uint64, s Slot) bool {
		seen++
		return true
	})
	if seen == 0 || seen > n {
		t.Fatalf("iterated %d entries", seen)
	}
	// Partial ranges partition the full scan.
	half1, half2 := 0, 0
	ix.ForEachEntryInBuckets(0, 32, func(uint64, Slot) bool { half1++; return true })
	ix.ForEachEntryInBuckets(32, 64, func(uint64, Slot) bool { half2++; return true })
	if half1+half2 != seen {
		t.Fatalf("partition mismatch: %d + %d != %d", half1, half2, seen)
	}
	// Early termination.
	count := 0
	ix.ForEachEntryInBuckets(0, ix.NumBuckets(), func(uint64, Slot) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestSnapshotRestore(t *testing.T) {
	ix, _ := New(16)
	const n = 300 // forces overflow on 16 buckets
	addrs := make(map[uint64]hlog.Address)
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindOrCreateEntry(h)
		a := hlog.Address(64 + i*16)
		for {
			old := s.Load()
			if s.CompareAndSwap(old, packEntry(TagOf(h), a, false)) {
				break
			}
		}
		addrs[i] = a
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix2.FindEntry(h)
		if !s.Valid() {
			t.Fatalf("key %d missing after restore", i)
		}
		// Same-tag collisions share entries; the restored address must
		// match the original index's resolution, not necessarily addrs[i].
		orig := ix.FindEntry(h)
		if s.Load() != orig.Load() {
			t.Fatalf("key %d: restored entry %#x != original %#x",
				i, s.Load(), orig.Load())
		}
	}
	if ix2.Stats().UsedEntries != ix.Stats().UsedEntries {
		t.Fatal("restored occupancy differs")
	}
}

func TestStats(t *testing.T) {
	ix, _ := New(64)
	st := ix.Stats()
	if st.UsedEntries != 0 || st.MainBuckets != 64 {
		t.Fatalf("empty stats: %+v", st)
	}
	for i := uint64(0); i < 10; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindOrCreateEntry(h)
		s.CompareAndSwap(s.Load(), packEntry(TagOf(h), hlog.Address(64), false))
	}
	st = ix.Stats()
	if st.UsedEntries == 0 || st.UsedEntries > 10 {
		t.Fatalf("used entries %d", st.UsedEntries)
	}
}

func BenchmarkFindEntry(b *testing.B) {
	ix, _ := New(1 << 16)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		h := hashfn.Hash64(i)
		s := ix.FindOrCreateEntry(h)
		s.CompareAndSwap(s.Load(), packEntry(TagOf(h), hlog.Address(64+i), false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.FindEntry(hashfn.Hash64(uint64(i % n)))
	}
}

func BenchmarkFindOrCreateParallel(b *testing.B) {
	ix, _ := New(1 << 16)
	var ctr uint64
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		base := ctr
		ctr += 1 << 32
		mu.Unlock()
		i := base
		for pb.Next() {
			ix.FindOrCreateEntry(hashfn.Hash64(i))
			i++
		}
	})
}

func ExampleIndex() {
	ix, _ := New(64)
	h := hashfn.Hash([]byte("user:42"))
	slot := ix.FindOrCreateEntry(h)
	slot.CompareAndSwap(slot.Load(), packEntry(TagOf(h), hlog.Address(4096), false))
	fmt.Println(ix.FindEntry(h).Load().Address())
	// Output: 4096
}
