// Package hashidx implements FASTER's lock-free hash index (§2): an array of
// cacheline-sized buckets of eight 8-byte words — seven entries plus an
// overflow pointer. Each entry packs a 48-bit HybridLog address with
// additional high bits of the key hash (the tag), which disambiguates what a
// bucket entry points to without extra cache misses or full key comparisons.
// Entries are only ever updated with compare-and-swap; the index itself
// never blocks.
package hashidx

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/hlog"
)

const (
	// EntriesPerBucket is the number of usable entries per bucket; the
	// eighth word links an overflow bucket.
	EntriesPerBucket = 7
	bucketWords      = 8

	tagBits  = 14
	tagShift = 64 - tagBits

	addrMask = hlog.AddressMask
	tagMask  = ((uint64(1) << tagBits) - 1) << hlog.AddressBits

	tentativeBit = uint64(1) << 62
)

// Entry is one packed hash-table entry: tag | address (+ tentative bit
// during two-phase insertion).
type Entry uint64

// Address returns the HybridLog address the entry points to.
func (e Entry) Address() hlog.Address { return hlog.Address(uint64(e) & addrMask) }

// Tag returns the entry's stored tag bits.
func (e Entry) Tag() uint16 { return uint16((uint64(e) & tagMask) >> hlog.AddressBits) }

// Tentative reports whether the entry is mid-insertion.
func (e Entry) Tentative() bool { return uint64(e)&tentativeBit != 0 }

// Free reports whether the entry slot is unused.
func (e Entry) Free() bool { return e == 0 }

func packEntry(tag uint16, addr hlog.Address, tentative bool) Entry {
	e := uint64(addr) & addrMask
	e |= uint64(tag) << hlog.AddressBits
	if tentative {
		e |= tentativeBit
	}
	return Entry(e)
}

// TagOf extracts the tag bits the index uses from a 64-bit key hash.
func TagOf(hash uint64) uint16 { return uint16(hash >> tagShift) }

// PackEntry builds a committed entry pointing at addr; the store uses it as
// the new value in chain-head CAS operations.
func PackEntry(tag uint16, addr hlog.Address) Entry {
	return packEntry(tag, addr, false)
}

// Slot is a handle to one entry word; Load and CompareAndSwap operate on it
// atomically.
type Slot struct{ p *uint64 }

// Load atomically reads the slot's entry.
func (s Slot) Load() Entry { return Entry(atomic.LoadUint64(s.p)) }

// CompareAndSwap atomically replaces old with new.
func (s Slot) CompareAndSwap(old, new Entry) bool {
	return atomic.CompareAndSwapUint64(s.p, uint64(old), uint64(new))
}

// Valid reports whether the Slot refers to an entry.
func (s Slot) Valid() bool { return s.p != nil }

// Index is the lock-free hash table.
type Index struct {
	mask uint64
	main []uint64 // numBuckets * bucketWords

	ovfMu     sync.Mutex   // guards growth of the block list
	ovfBlocks atomic.Value // [][]uint64, blocks of ovfBlockBuckets buckets
	ovfNext   atomic.Uint64
}

const ovfBlockBuckets = 4096

// New creates an index with numBuckets main buckets (power of two).
func New(numBuckets int) (*Index, error) {
	if numBuckets < 1 || numBuckets&(numBuckets-1) != 0 {
		return nil, fmt.Errorf("hashidx: buckets %d must be a power of two", numBuckets)
	}
	ix := &Index{
		mask: uint64(numBuckets - 1),
		main: make([]uint64, numBuckets*bucketWords),
	}
	ix.ovfBlocks.Store([][]uint64{})
	return ix, nil
}

// NumBuckets returns the number of main buckets.
func (ix *Index) NumBuckets() uint64 { return ix.mask + 1 }

// bucketOf returns the main-bucket index for a hash.
func (ix *Index) bucketOf(hash uint64) uint64 { return hash & ix.mask }

func (ix *Index) mainBucket(b uint64) []uint64 {
	return ix.main[b*bucketWords : (b+1)*bucketWords]
}

func (ix *Index) ovfBucket(id uint64) []uint64 {
	blocks := ix.ovfBlocks.Load().([][]uint64)
	blk := blocks[id/ovfBlockBuckets]
	off := (id % ovfBlockBuckets) * bucketWords
	return blk[off : off+bucketWords]
}

// allocOvfBucket returns the id+1 of a fresh overflow bucket (so 0 remains
// the nil link).
func (ix *Index) allocOvfBucket() uint64 {
	id := ix.ovfNext.Add(1) - 1
	ix.ovfMu.Lock()
	blocks := ix.ovfBlocks.Load().([][]uint64)
	for uint64(len(blocks))*ovfBlockBuckets <= id {
		// Copy-on-append so lock-free readers never see a racing slice
		// header.
		next := make([][]uint64, len(blocks)+1)
		copy(next, blocks)
		next[len(blocks)] = make([]uint64, ovfBlockBuckets*bucketWords)
		blocks = next
	}
	ix.ovfBlocks.Store(blocks)
	ix.ovfMu.Unlock()
	return id + 1
}

// ovfLink returns the overflow-bucket handle stored in a bucket's last word.
func ovfLink(bucket []uint64) uint64 {
	return atomic.LoadUint64(&bucket[bucketWords-1])
}

// FindEntry locates the entry for hash, returning an invalid Slot if absent.
func (ix *Index) FindEntry(hash uint64) Slot {
	tag := TagOf(hash)
	bucket := ix.mainBucket(ix.bucketOf(hash))
	for {
		for i := 0; i < EntriesPerBucket; i++ {
			e := Entry(atomic.LoadUint64(&bucket[i]))
			if !e.Free() && !e.Tentative() && e.Tag() == tag {
				return Slot{&bucket[i]}
			}
		}
		link := ovfLink(bucket)
		if link == 0 {
			return Slot{}
		}
		bucket = ix.ovfBucket(link - 1)
	}
}

// FindOrCreateEntry locates the entry for hash, creating it (with an invalid
// address) if absent. Creation uses FASTER's two-phase tentative protocol so
// two racing creators for the same tag converge on one entry.
func (ix *Index) FindOrCreateEntry(hash uint64) Slot {
	tag := TagOf(hash)
	b := ix.bucketOf(hash)
	for {
		if s := ix.FindEntry(hash); s.Valid() {
			return s
		}
		// Claim a free slot tentatively.
		slot, bucketHead := ix.claimFreeSlot(b, tag)
		if !slot.Valid() {
			continue // new overflow bucket appeared; rescan
		}
		// If another non-tentative or earlier tentative entry with our tag
		// exists elsewhere in the chain, back off and rescan.
		if ix.tagConflict(bucketHead, tag, slot) {
			slot.CompareAndSwap(packEntry(tag, hlog.InvalidAddress, true), 0)
			continue
		}
		// Commit: clear the tentative bit.
		if slot.CompareAndSwap(packEntry(tag, hlog.InvalidAddress, true),
			packEntry(tag, hlog.InvalidAddress, false)) {
			return slot
		}
	}
}

// claimFreeSlot CASes a tentative entry into the first free slot of the
// bucket chain, extending the chain with an overflow bucket if needed.
func (ix *Index) claimFreeSlot(b uint64, tag uint16) (Slot, []uint64) {
	head := ix.mainBucket(b)
	bucket := head
	for {
		for i := 0; i < EntriesPerBucket; i++ {
			e := Entry(atomic.LoadUint64(&bucket[i]))
			if e.Free() {
				if atomic.CompareAndSwapUint64(&bucket[i], 0,
					uint64(packEntry(tag, hlog.InvalidAddress, true))) {
					return Slot{&bucket[i]}, head
				}
			}
		}
		link := ovfLink(bucket)
		if link == 0 {
			// Extend the chain. Racing extenders: first CAS wins, loser's
			// bucket is leaked into the pool (bounded, rare).
			newLink := ix.allocOvfBucket()
			if !atomic.CompareAndSwapUint64(&bucket[bucketWords-1], 0, newLink) {
				link = ovfLink(bucket)
			} else {
				link = newLink
			}
		}
		bucket = ix.ovfBucket(link - 1)
	}
}

// tagConflict reports whether an entry with tag exists in the chain rooted
// at head other than ours.
func (ix *Index) tagConflict(head []uint64, tag uint16, ours Slot) bool {
	bucket := head
	for {
		for i := 0; i < EntriesPerBucket; i++ {
			p := &bucket[i]
			if p == ours.p {
				continue
			}
			e := Entry(atomic.LoadUint64(p))
			if !e.Free() && e.Tag() == tag {
				// A committed entry always wins; among tentative entries,
				// the one at the lower chain position wins. We conservatively
				// treat any other same-tag entry as a conflict unless it is
				// tentative and at a later address than ours, in which case
				// the other inserter will back off.
				if !e.Tentative() {
					return true
				}
				if uintptr(unsafe.Pointer(p)) < uintptr(unsafe.Pointer(ours.p)) {
					return true
				}
			}
		}
		link := ovfLink(bucket)
		if link == 0 {
			return false
		}
		bucket = ix.ovfBucket(link - 1)
	}
}

// ForEachEntryInBuckets iterates entries of main buckets [lo, hi) including
// their overflow chains, calling fn with each non-free committed entry and
// its main-bucket index. Iteration is a racy snapshot: concurrent updates
// may or may not be observed, which is the contract migration needs.
func (ix *Index) ForEachEntryInBuckets(lo, hi uint64, fn func(bucket uint64, s Slot) bool) {
	if hi > ix.NumBuckets() {
		hi = ix.NumBuckets()
	}
	for b := lo; b < hi; b++ {
		bucket := ix.mainBucket(b)
		for {
			for i := 0; i < EntriesPerBucket; i++ {
				e := Entry(atomic.LoadUint64(&bucket[i]))
				if e.Free() || e.Tentative() {
					continue
				}
				if !fn(b, Slot{&bucket[i]}) {
					return
				}
			}
			link := ovfLink(bucket)
			if link == 0 {
				break
			}
			ix.ovfMu.Lock()
			bucket = ix.ovfBucket(link - 1)
			ix.ovfMu.Unlock()
		}
	}
}

// Stats summarizes occupancy.
type Stats struct {
	MainBuckets     uint64
	OverflowBuckets uint64
	UsedEntries     uint64
}

// Stats scans the table and returns occupancy counters.
func (ix *Index) Stats() Stats {
	st := Stats{MainBuckets: ix.NumBuckets(), OverflowBuckets: ix.ovfNext.Load()}
	ix.ForEachEntryInBuckets(0, ix.NumBuckets(), func(_ uint64, s Slot) bool {
		if s.Load().Address() != hlog.InvalidAddress {
			st.UsedEntries++
		}
		return true
	})
	return st
}

// Snapshot serializes the index (fuzzy if concurrent with writers; callers
// needing a sharp image take it after a CPR cut). Format: numBuckets,
// numOverflow, main words, overflow words.
func (ix *Index) Snapshot(w io.Writer) error {
	var hdr [16]byte
	nOvf := ix.ovfNext.Load()
	binary.LittleEndian.PutUint64(hdr[0:8], ix.NumBuckets())
	binary.LittleEndian.PutUint64(hdr[8:16], nOvf)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for i := range ix.main {
		binary.LittleEndian.PutUint64(buf, atomic.LoadUint64(&ix.main[i]))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for id := uint64(0); id < nOvf; id++ {
		bucket := ix.ovfBucket(id)
		for i := range bucket {
			binary.LittleEndian.PutUint64(buf, atomic.LoadUint64(&bucket[i]))
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreSnapshot loads an image written by Snapshot into a fresh Index.
func RestoreSnapshot(r io.Reader) (*Index, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	nBuckets := binary.LittleEndian.Uint64(hdr[0:8])
	nOvf := binary.LittleEndian.Uint64(hdr[8:16])
	ix, err := New(int(nBuckets))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	for i := range ix.main {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		ix.main[i] = binary.LittleEndian.Uint64(buf)
	}
	for id := uint64(0); id < nOvf; id++ {
		ix.allocOvfBucket()
	}
	ix.ovfNext.Store(nOvf)
	for id := uint64(0); id < nOvf; id++ {
		bucket := ix.ovfBucket(id)
		for i := range bucket {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			bucket[i] = binary.LittleEndian.Uint64(buf)
		}
	}
	return ix, nil
}
