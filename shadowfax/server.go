package shadowfax

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/storage"
)

// Server is a running Shadowfax server node: partitioned dispatchers over a
// shared FASTER instance with view-validated batches (§3.1–3.2), plus the
// durability, space-management and migration subsystems behind them.
type Server struct {
	core     *core.Server
	ownedDev Device // log device created by default options; closed with the server
}

type serverConfig struct {
	cfg    core.ServerConfig
	ranges []HashRange
}

// ServerOption configures NewServer. Unset options fall back to small,
// functional defaults (two dispatcher threads, an in-memory log device, a
// 4 MiB memory budget); config evolution adds options, never breaks
// signatures.
type ServerOption func(*serverConfig)

// WithListenAddr sets the transport listen address. The default is the
// server id itself, which is what the in-process transport expects; TCP
// deployments pass a host:port here.
func WithListenAddr(addr string) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Addr = addr }
}

// WithThreads sets the number of dispatcher goroutines ("vCPUs", §3.1).
func WithThreads(n int) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Threads = n }
}

// WithOwnership sets the hash ranges the server initially owns. The default
// is the full hash space; pass it explicitly in multi-server deployments.
// Ignored when recovering (the checkpointed view wins).
func WithOwnership(ranges ...HashRange) ServerOption {
	return func(sc *serverConfig) { sc.ranges = ranges }
}

// WithIndexBuckets sets the store's main hash-bucket count (a power of two).
func WithIndexBuckets(n int) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Store.IndexBuckets = n }
}

// WithLogDevice installs the device backing the HybridLog's stable region.
// The default is a fresh in-memory device owned (and closed) by the server;
// a caller-provided device is the caller's to close — which is what lets it
// survive a Server.Close and back a recovered instance.
func WithLogDevice(dev Device) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Store.Log.Device = dev }
}

// WithMemoryBudget shapes the HybridLog's in-memory region: page size
// (1<<pageBits bytes), total in-memory page frames, and how many trailing
// frames allow in-place updates (§2.2). The default is 64 KiB pages, 64
// frames, 32 mutable.
func WithMemoryBudget(pageBits uint, memPages, mutablePages int) ServerOption {
	return func(sc *serverConfig) {
		sc.cfg.Store.Log.PageBits = pageBits
		sc.cfg.Store.Log.MemPages = memPages
		sc.cfg.Store.Log.MutablePages = mutablePages
	}
}

// WithReadHintBytes sizes the first device read of a pending (disk-resident)
// operation: records at most this large complete in a single I/O, longer
// ones read the remainder in one continuation that reuses the prefix. The
// default is 256; size it to the workload's typical record footprint.
func WithReadHintBytes(n int) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Store.ReadHintBytes = n }
}

// WithReadCache enables the second-chance read cache: records read from the
// device are (probabilistically, on their second touch) copied back into the
// mutable log region so subsequent reads hit memory. Worth it for skewed
// read-heavy workloads whose hot set outgrows the memory budget; off by
// default because the copies consume log space and flush bandwidth.
func WithReadCache(enabled bool) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Store.ReadCache = enabled }
}

// WithSharedTier mirrors every flushed page to the shared remote tier,
// enabling indirection records during migration (§3.3.2).
func WithSharedTier(tier *SharedTier) ServerOption {
	return func(sc *serverConfig) { sc.cfg.Store.Log.Tier = tier }
}

// WithCheckpointDevice enables durable checkpoints onto dev (§3.3.1 + CPR).
// Without it the server is memory-only and checkpoint requests fail.
func WithCheckpointDevice(dev Device) ServerOption {
	return func(sc *serverConfig) { sc.cfg.CheckpointDevice = dev }
}

// WithCheckpointEvery takes a checkpoint on this period (0 = on demand only).
func WithCheckpointEvery(d time.Duration) ServerOption {
	return func(sc *serverConfig) { sc.cfg.CheckpointEvery = d }
}

// WithRecovery rebuilds the server from the latest committed image on the
// checkpoint device instead of starting empty; the log device must be the
// same device the image was checkpointed against. Ownership passed via
// WithOwnership is ignored — the checkpointed view is restored.
func WithRecovery() ServerOption {
	return func(sc *serverConfig) { sc.cfg.Recover = true }
}

// WithCompaction starts the background space-management service (§3.3.3): a
// log-compaction pass runs whenever the stable prefix exceeds watermark
// bytes, checked every period.
func WithCompaction(every time.Duration, watermark uint64) ServerOption {
	return func(sc *serverConfig) {
		sc.cfg.CompactEvery = every
		sc.cfg.CompactWatermark = watermark
	}
}

// AutoScaleConfig tunes the hosted load balancer (WithAutoScale). Zero
// fields take the documented defaults.
type AutoScaleConfig struct {
	// Every is the planning-pass period (default 1s).
	Every time.Duration
	// Imbalance is the hottest/coolest ops-rate ratio that arms a split
	// (default 3.0).
	Imbalance float64
	// Cooldown is the hold-off after a triggered migration (default 10s).
	Cooldown time.Duration
	// MinOpsPerSec is the load floor below which the cluster is considered
	// idle and never split (default 500).
	MinOpsPerSec float64
	// MaxConcurrent caps how many migrations one planning pass may start
	// concurrently over disjoint hash ranges: the top-K hottest servers
	// each split toward a distinct cool server (default 4). Set 1 to
	// restore strictly serial migrations.
	MaxConcurrent int
	// SpawnStandby lets the balancer self-heal replication: when a promoted
	// primary is observed serving with no registered replica, the hook is
	// called (rate-limited per primary) to provision a fresh standby — e.g.
	// boot a NewServer(WithReplication(...)) for it. Runs on the balancer
	// goroutine; errors are retried on later passes. Nil disables healing.
	SpawnStandby func(primaryID string) error
}

// WithAutoScale hosts the elastic control plane's load balancer on this
// server. The balancer polls every registered server's stats, and when load
// is imbalanced past cfg.Imbalance it splits up to cfg.MaxConcurrent of the
// hottest servers' sampled hash distributions at their load medians and
// migrates the hot halves to the coolest servers in parallel — the paper's
// scale-out (§3.3), triggered automatically. One balancer host per
// deployment is the normal topology; additional hosts are safe (the
// metadata store rejects overlapping migration starts) but plan redundant
// passes. Inspect and drive it with Admin.BalanceStatus / Admin.Rebalance.
func WithAutoScale(cfg AutoScaleConfig) ServerOption {
	return func(sc *serverConfig) {
		sc.cfg.AutoScale = true
		sc.cfg.AutoScaleEvery = cfg.Every
		sc.cfg.AutoScaleImbalance = cfg.Imbalance
		sc.cfg.AutoScaleCooldown = cfg.Cooldown
		sc.cfg.AutoScaleMinRate = cfg.MinOpsPerSec
		sc.cfg.AutoScaleMaxConcurrent = cfg.MaxConcurrent
		sc.cfg.SpawnStandby = cfg.SpawnStandby
	}
}

// WithMaxConnBacklog bounds how many batches a single client connection may
// have parked on the replication ack gate before the server sheds new ones
// with a retryable overload status (default 256; n < 0 disables shedding).
// Shedding keeps a lagging backup or an unconfirmed detach from growing the
// held-response queue without limit while clients keep pipelining.
func WithMaxConnBacklog(n int) ServerOption {
	if n < 0 {
		n = -1
	}
	return func(sc *serverConfig) { sc.cfg.MaxConnBacklog = n }
}

// WithLeaseTTL sets the primary liveness lease period (default: the
// replication ack timeout). Once a server has accepted a replica it renews a
// metadata lease every TTL/3; while the lease is live a standby that merely
// lost its stream — a partition, not a primary death — cannot promote
// (the metadata store refuses with ErrPrimaryAlive). A clean Close releases
// the lease immediately, so ordinary failover pays no TTL latency.
func WithLeaseTTL(ttl time.Duration) ServerOption {
	return func(sc *serverConfig) { sc.cfg.LeaseTTL = ttl }
}

// WithSampleDuration sets how long the migration Sampling phase collects hot
// records before ownership transfer (§3.3).
func WithSampleDuration(d time.Duration) ServerOption {
	return func(sc *serverConfig) { sc.cfg.SampleDuration = d }
}

// ReplicationConfig tunes a hot standby (WithReplication). Zero durations
// take the documented defaults.
type ReplicationConfig struct {
	// ReplicaOf names the primary this server shadows. Required.
	ReplicaOf string
	// HeartbeatEvery is the primary's keepalive period on an idle
	// replication stream (default 100ms).
	HeartbeatEvery time.Duration
	// FailoverAfter is how long the standby tolerates stream silence before
	// probing the primary and, if it is dead, promoting itself (default 1s).
	FailoverAfter time.Duration
	// AckTimeout is how long the primary tolerates acknowledgment silence
	// before detaching the standby and releasing held responses (default 2s).
	AckTimeout time.Duration
}

// WithReplication boots this server as a hot standby for cfg.ReplicaOf: it
// adopts the primary's metadata identity, attaches over the cluster
// transport, receives the primary's sealed base state (a checkpoint-style
// version scan shipped as migration-record frames) followed by the live
// write stream, and acknowledges cumulatively — the primary reveals no
// response before the standby holds it. When the stream goes silent past
// cfg.FailoverAfter and the primary does not answer a direct probe, the
// standby promotes itself through the metadata store's single linearization
// point: the view is bumped, the address repoints here, clients replay their
// sessions through the §3.3.1 recovery path, and the deposed primary's
// eventual restart is refused. Until promotion the standby rejects client
// batches and registers nothing. Mutually exclusive with WithRecovery.
func WithReplication(cfg ReplicationConfig) ServerOption {
	return func(sc *serverConfig) {
		sc.cfg.ReplicaOf = cfg.ReplicaOf
		sc.cfg.ReplicaHeartbeatEvery = cfg.HeartbeatEvery
		sc.cfg.ReplicaFailoverAfter = cfg.FailoverAfter
		sc.cfg.ReplicaAckTimeout = cfg.AckTimeout
	}
}

// ScaleInConfig tunes the balancer's low-water drain policy (WithScaleIn).
// Zero fields take the documented defaults.
type ScaleInConfig struct {
	// BelowOpsPerSec is the ops/sec low-water mark; a server must stay
	// below it to be considered cold (default 50).
	BelowOpsPerSec float64
	// AfterPasses is how many consecutive cold planning passes arm a drain
	// (default 5).
	AfterPasses int
	// MinServers is the floor the cluster never drains below (default 2).
	MinServers int
}

// WithScaleIn enables scale-in on the hosted balancer (requires
// WithAutoScale): when a server's observed load stays below
// cfg.BelowOpsPerSec for cfg.AfterPasses consecutive planning passes and the
// cluster would keep at least cfg.MinServers servers, the balancer drains
// the cold server's ranges into the survivors via ordinary migrations and
// retires it from the metadata store. The balancer never drains itself, a
// busy server, or anything while migrations are in flight; a drain
// interrupted by a failure is retried safely (retiring twice is a no-op).
// Manual equivalent: Admin.Drain.
func WithScaleIn(cfg ScaleInConfig) ServerOption {
	return func(sc *serverConfig) {
		sc.cfg.ScaleIn = true
		sc.cfg.ScaleInBelowRate = cfg.BelowOpsPerSec
		sc.cfg.ScaleInAfterPasses = cfg.AfterPasses
		sc.cfg.ScaleInMinServers = cfg.MinServers
	}
}

// NewServer boots a server named id on the cluster, registers its address in
// the metadata store, and starts its dispatchers. By default it owns the
// full hash space, listens on its own id over the cluster transport, and
// keeps its log on a private in-memory device.
func NewServer(cluster *Cluster, id string, opts ...ServerOption) (*Server, error) {
	sc := serverConfig{
		cfg: core.ServerConfig{
			ID: id, Addr: id, Threads: 2,
			Transport: cluster.tr, Meta: cluster.meta,
			Store: faster.Config{
				IndexBuckets: 1 << 14,
				Log: hlog.Config{
					PageBits: 16, MemPages: 64, MutablePages: 32, LogID: id,
				},
			},
		},
		ranges: []HashRange{FullRange},
	}
	for _, o := range opts {
		o(&sc)
	}
	var owned Device
	if sc.cfg.Store.Log.Device == nil {
		owned = storage.NewMemDevice(storage.LatencyModel{}, 4)
		sc.cfg.Store.Log.Device = owned
	}
	srv, err := core.NewServer(sc.cfg, sc.ranges...)
	if err != nil {
		if owned != nil {
			owned.Close()
		}
		return nil, err
	}
	if sc.cfg.ReplicaOf != "" {
		// A standby adopts its primary's metadata identity; registering its
		// own address here would repoint the primary's entry at the standby
		// before promotion. The promotion path repoints it atomically.
		return &Server{core: srv, ownedDev: owned}, nil
	}
	cluster.meta.SetServerAddr(id, srv.Addr())
	// Verify the address actually landed: over a remote metadata provider
	// SetServerAddr can fail silently (the Provider signature carries no
	// error), and a registered-but-unroutable server would break admin RPCs
	// and the balancer with no symptom at the server itself.
	if got, aerr := cluster.meta.ServerAddr(id); aerr != nil || got != srv.Addr() {
		srv.Close()
		if owned != nil {
			owned.Close()
		}
		return nil, fmt.Errorf("shadowfax: registering %s's address in the metadata store failed (got %q, %v)",
			id, got, aerr)
	}
	return &Server{core: srv, ownedDev: owned}, nil
}

// ID returns the server's identity in the metadata store.
func (s *Server) ID() string { return s.core.ID() }

// Addr returns the server's transport listen address.
func (s *Server) Addr() string { return s.core.Addr() }

// Close stops the dispatchers and background services and shuts the store
// down. Devices installed with WithLogDevice/WithCheckpointDevice survive
// (they may back a recovered instance); the default in-memory device is
// closed with the server.
func (s *Server) Close() error {
	err := s.core.Close()
	if s.ownedDev != nil {
		s.ownedDev.Close()
	}
	return err
}

// CurrentView returns the server's active ownership view.
func (s *Server) CurrentView() View { return s.core.CurrentView() }

// Stats returns a snapshot of the server's counters — the same shape
// Admin.Stats reports over the wire.
func (s *Server) Stats() ServerStats { return serverStatsFromWire(s.core.StatsSnapshot()) }

// LogStats returns a snapshot of the server's HybridLog geometry.
func (s *Server) LogStats() LogStats {
	lg := s.core.Store().Log()
	return LogStats{
		BeginAddress:        uint64(lg.BeginAddress()),
		HeadAddress:         uint64(lg.HeadAddress()),
		FlushedUntilAddress: uint64(lg.FlushedUntilAddress()),
		TailAddress:         uint64(lg.TailAddress()),
		DiskResidentBytes:   lg.DiskResidentBytes(),
	}
}

// Checkpoint takes a durable checkpoint now and returns once the image is
// committed. Requires WithCheckpointDevice; fails with ErrRejected
// otherwise. Remote equivalent: Admin.Checkpoint.
func (s *Server) Checkpoint() (CheckpointInfo, error) {
	res, err := s.core.Checkpoint()
	if err != nil {
		return CheckpointInfo{}, rejectionError(err)
	}
	return CheckpointInfo{Version: res.Info.Version, LogTail: uint64(res.Info.Tail)}, nil
}

// Compact runs one log-compaction pass now and returns its statistics.
// Remote equivalent: Admin.Compact.
func (s *Server) Compact() (CompactionStats, error) {
	st, err := s.core.Compact()
	if err != nil {
		return CompactionStats{}, rejectionError(err)
	}
	return compactionStatsFromCore(st), nil
}

// LastCompaction returns the most recent completed pass's statistics.
func (s *Server) LastCompaction() CompactionStats {
	return compactionStatsFromCore(s.core.LastCompaction())
}

// StartMigration begins migrating [rng.Start, rng.End) to the server named
// target with the five-phase protocol (§3.3) and returns once the migration
// is registered; it proceeds in the background while both servers keep
// serving. Remote equivalent: Admin.Migrate.
func (s *Server) StartMigration(target string, rng HashRange) error {
	_, err := s.core.StartMigration(target, rng)
	return err
}

// LastMigrationReport returns the most recent source-side migration report.
func (s *Server) LastMigrationReport() MigrationReport {
	return s.core.LastMigrationReport()
}

// Drain migrates every range this server owns to the surviving servers via
// ordinary migrations and retires the server from the metadata store
// (scale-in). The server keeps serving until each range's ownership
// transfers. Refused on a standby, while a replica is attached, or when the
// drain would leave a range unowned (no other server registered). A drain
// interrupted by a failure may be retried: it re-plans from the current view
// and retiring twice is a no-op. Close the server afterwards. Remote
// equivalent: Admin.Drain.
func (s *Server) Drain() (DrainResult, error) {
	rep, err := s.core.Drain()
	if err != nil {
		return DrainResult{}, rejectionError(err)
	}
	return DrainResult{Moved: rep.Moved, Retired: rep.Retired}, nil
}

// IsStandby reports whether the server is an unpromoted hot standby
// (WithReplication): mirroring its primary and rejecting client batches.
// It turns false at promotion.
func (s *Server) IsStandby() bool { return s.core.IsStandby() }

// Replicating reports whether a synced-or-syncing backup is currently
// attached to this primary.
func (s *Server) Replicating() bool { return s.core.Replicating() }
