// Package shadowfax is the public API of this Shadowfax reproduction: an
// embeddable, stable surface for running servers and talking to them, built
// over the internal packages that implement the paper (Kulkarni et al.,
// "Achieving High Throughput and Elasticity in a Larger-than-Memory Store",
// PVLDB 2021).
//
// This package is the supported boundary. Programs — including this repo's
// cmd/ binaries and examples/ — build against it exclusively; everything
// under internal/ (the wire format, the client thread, the FASTER store, the
// metadata service) may change without notice.
//
// # Shape of the API
//
// A Cluster bundles the deployment-wide fixtures: the metadata store (the
// paper's ZooKeeper stand-in) and the transport with its network cost model.
// Servers and clients are created against a Cluster:
//
//	cluster := shadowfax.NewCluster()
//	srv, err := shadowfax.NewServer(cluster, "server-1")
//	defer srv.Close()
//
//	cl, err := shadowfax.Dial(cluster)
//	defer cl.Close()
//
// The Client offers synchronous, context-aware methods and asynchronous
// variants returning pooled Futures. Both ride the same view-aware,
// pipelined, batched session machinery of §3.1.1; the synchronous form is a
// Future that is waited on immediately:
//
//	err := cl.Set(ctx, []byte("k"), []byte("v"))
//	v, err := cl.Get(ctx, []byte("k"))
//
//	futs := make([]*shadowfax.Future, 0, 128)
//	for i := 0; i < 128; i++ {
//		futs = append(futs, cl.SetAsync(key(i), val(i)))
//	}
//	err := cl.Drain(ctx) // or Wait on each future individually
//
// Errors are typed: ErrNotFound, ErrNotOwner, ErrSessionBroken, ErrClosed,
// ErrRejected and ErrInternal compose with errors.Is / errors.As.
//
// Control-plane operations — Checkpoint, Compact, Migrate, Stats — live on
// Admin, not on the data-plane Client; each runs as an RPC on its own
// connection, mirroring the paper's Migrate() RPC model (§3.3):
//
//	admin := shadowfax.NewAdmin(cluster)
//	info, err := admin.Checkpoint(ctx, "server-1")
//
// Out-of-process servers are adopted into a fresh Cluster with
// Cluster.Discover, which performs the Stats handshake and registers the
// server's identity, address and ownership view in the local metadata cache.
package shadowfax
