package shadowfax_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/shadowfax"
)

// TestAutoScaleOutSplitsHotRange is the elasticity acceptance test: a
// cluster of one loaded server ("hot", owning the full hash space, hosting
// the balancer) and one idle server ("cold", owning nothing) is driven with
// a workload concentrated entirely on hot. Nothing ever calls Migrate — the
// balancer alone must detect the imbalance, pick a split from the sampled
// hash distribution, and migrate the hot half to cold. The test then
// asserts post-migration ownership (the two views partition the hash
// space), client re-routing (cold serves operations), and data integrity
// (every counter equals exactly the increments applied, across the split).
func TestAutoScaleOutSplitsHotRange(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()

	hot, err := shadowfax.NewServer(cluster, "hot",
		shadowfax.WithThreads(2),
		shadowfax.WithSampleDuration(20*time.Millisecond),
		shadowfax.WithAutoScale(shadowfax.AutoScaleConfig{
			Every:        50 * time.Millisecond,
			Imbalance:    1.5,
			Cooldown:     time.Minute, // at most one split in this test
			MinOpsPerSec: 50,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer hot.Close()
	cold, err := shadowfax.NewServer(cluster, "cold",
		shadowfax.WithThreads(2), shadowfax.WithOwnership())
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if v, err := cluster.View("cold"); err != nil || len(v.Ranges) != 0 {
		t.Fatalf("cold should start empty: %+v %v", v, err)
	}

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const keys = 512
	key := func(i int) []byte { return []byte(fmt.Sprintf("autoscale-%04d", i)) }
	zero := make([]byte, 8)
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, key(i), zero); err != nil {
			t.Fatal(err)
		}
	}

	// Drive RMW increments (all routed to hot) until the balancer has
	// split and the migration's dependency has cleared.
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)
	rounds := 0
	split := false
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		futs := make([]*shadowfax.Future, keys)
		for i := 0; i < keys; i++ {
			futs[i] = cl.RMWAsync(key(i), delta)
		}
		cl.Flush()
		for _, f := range futs {
			if _, err := f.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			f.Release()
		}
		rounds++
		cv, err := cluster.View("cold")
		if err != nil {
			t.Fatal(err)
		}
		if len(cv.Ranges) > 0 &&
			len(cluster.PendingMigrations("hot")) == 0 &&
			len(cluster.PendingMigrations("cold")) == 0 {
			split = true
			break
		}
	}
	if !split {
		t.Fatalf("balancer never split after %d rounds", rounds)
	}

	// Ownership: the two views must partition the full hash space.
	hv, _ := cluster.View("hot")
	cv, _ := cluster.View("cold")
	if len(cv.Ranges) == 0 {
		t.Fatal("cold owns nothing after the split")
	}
	var total uint64
	for _, v := range []shadowfax.View{hv, cv} {
		for _, r := range v.Ranges {
			total += r.End - r.Start
		}
	}
	if total != ^uint64(0) {
		t.Fatalf("views do not partition the hash space: %v + %v", hv.Ranges, cv.Ranges)
	}
	for _, hr := range hv.Ranges {
		for _, cr := range cv.Ranges {
			if hr.Overlaps(cr) {
				t.Fatalf("overlapping ownership: %v vs %v", hr, cr)
			}
		}
	}

	// The balancer did it, and says so.
	status, err := shadowfax.NewAdmin(cluster).BalanceStatus(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !status.Enabled || status.Migrations < 1 {
		t.Fatalf("balancer status: %+v, want enabled with ≥1 triggered migration", status)
	}
	if hs, err := hot.Stats(), error(nil); err == nil && hs.BalanceMigrations < 1 {
		t.Fatalf("hot stats do not report the balancer migration: %+v", hs)
	}

	// Integrity across the split: every counter saw every increment exactly
	// once, wherever it lives now. These reads also exercise re-routing —
	// cold must serve its share.
	coldBefore, err := shadowfax.NewAdmin(cluster).Stats(ctx, "cold")
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(rounds)
	for i := 0; i < keys; i++ {
		v, err := cl.Get(ctx, key(i))
		if err != nil {
			t.Fatalf("get %s: %v", key(i), err)
		}
		if got := binary.LittleEndian.Uint64(v); got != want {
			t.Fatalf("key %s = %d, want %d (lost or duplicated increments across the migration)",
				key(i), got, want)
		}
	}
	coldAfter, err := shadowfax.NewAdmin(cluster).Stats(ctx, "cold")
	if err != nil {
		t.Fatal(err)
	}
	if coldAfter.OpsCompleted <= coldBefore.OpsCompleted {
		t.Fatalf("cold served no reads after the split (%d → %d): clients did not re-route",
			coldBefore.OpsCompleted, coldAfter.OpsCompleted)
	}
}
