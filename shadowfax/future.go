package shadowfax

import (
	"context"
	"runtime"
	"sync/atomic"

	"repro/internal/wire"
)

// Future is the completion handle of an asynchronous operation. Futures are
// pooled per client: the underlying completion rides the client library's
// zero-allocation callback path, and Release recycles the handle (and its
// value buffer) so steady-state async traffic creates no per-operation
// garbage beyond the pool's amortized growth.
//
// A Future is completed exactly once — by a server response, by session
// recovery, or by Close (with ErrClosed). Wait may be called from any
// goroutine, but by one goroutine at a time.
type Future struct {
	c  *Client
	sh *shard

	ch   chan struct{} // capacity 1; signalled on completion
	done atomic.Bool   // set after the signal: completion fields are stable

	status wire.ResultStatus
	val    []byte // reused buffer; the result value is copied into it

	cb func(st wire.ResultStatus, v []byte) // bound once; handed to the thread
}

// complete is the thread callback: it runs while the issuing shard's lock is
// held (inside Poll/Flush/Close), copies the value out of the batch frame,
// and wakes the waiter. The signal is sent before done is set so that
// done==true implies the channel token exists (Release relies on that to
// drain safely).
func (f *Future) complete(st wire.ResultStatus, v []byte) {
	f.status = st
	f.val = append(f.val[:0], v...)
	select {
	case f.ch <- struct{}{}:
	default:
	}
	f.done.Store(true)
}

// Wait blocks until the operation completes or ctx is done.
//
// On completion it returns the operation's value (reads only; nil
// otherwise) and the operation's error from the package taxonomy. The value
// aliases the Future's internal buffer: it is valid until Release (or until
// the caller copies it).
//
// On ctx expiry/cancellation the operation is still in flight — its
// completion will arrive later (or at Close) — and Wait returns the context
// error, wrapped with ErrSessionBroken when the delay is explained by a dead
// server connection.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	if f.c.pumped {
		// A background pump goroutine drives the shards; just block.
		select {
		case <-f.ch:
			return f.result()
		case <-ctx.Done():
			return nil, f.c.ctxError(ctx.Err())
		}
	}
	for {
		select {
		case <-f.ch:
			return f.result()
		default:
		}
		if err := ctx.Err(); err != nil {
			return nil, f.c.ctxError(err)
		}
		f.c.step(f.sh)
	}
}

func (f *Future) result() ([]byte, error) {
	// The completion token is sent before done is stored; when the waiter
	// runs on a different goroutine than complete() (pump mode), done may
	// trail the token by an instant. Wait it out so a Release immediately
	// after Wait reliably sees done==true and recycles the Future.
	for !f.done.Load() {
		runtime.Gosched()
	}
	if err := errorFromStatus(f.status); err != nil {
		return nil, err
	}
	return f.val, nil
}

// Release returns the Future to its client's pool for reuse, after Wait
// observed the completion. It is a safe no-op on a Future whose operation is
// still in flight (e.g. Wait returned a context error — the handle is
// simply left for the garbage collector once the late completion fires) and
// on a Future already released (a second Release must not double-pool the
// handle). The value returned by Wait is invalid after Release.
func (f *Future) Release() {
	if f == nil || !f.done.Load() || f.sh == nil {
		return
	}
	select {
	case <-f.ch: // drop an unconsumed completion token (abandoned Wait)
	default:
	}
	f.sh = nil // marks the handle released until newFuture re-arms it
	f.c.futures.Put(f)
}
