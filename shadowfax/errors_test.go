package shadowfax

import (
	"errors"
	"testing"

	"repro/internal/wire"
)

// statusFromError is errorFromStatus's inverse, used only to assert the
// taxonomy round-trips: it classifies an error chain back onto the wire
// status that produced it (ErrInternal and unclassified errors both
// collapse onto StatusErr, which is also where StatusPending round-trips to
// — it has no public twin by design).
func statusFromError(err error) wire.ResultStatus {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, ErrNotFound):
		return wire.StatusNotFound
	case errors.Is(err, ErrNotOwner):
		return wire.StatusNotOwner
	case errors.Is(err, ErrClosed):
		return wire.StatusClosed
	default:
		return wire.StatusErr
	}
}

// TestErrorTaxonomyRoundTrip walks every wire.ResultStatus through the
// taxonomy and back. StatusPending is the one deliberate non-identity: it
// never leaves a server, so it classifies as ErrInternal and returns as
// StatusErr.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		status wire.ResultStatus
		want   error             // sentinel the mapped error must satisfy
		back   wire.ResultStatus // status the error classifies back to
	}{
		{wire.StatusOK, nil, wire.StatusOK},
		{wire.StatusNotFound, ErrNotFound, wire.StatusNotFound},
		{wire.StatusPending, ErrInternal, wire.StatusErr},
		{wire.StatusErr, ErrInternal, wire.StatusErr},
		{wire.StatusNotOwner, ErrNotOwner, wire.StatusNotOwner},
		{wire.StatusClosed, ErrClosed, wire.StatusClosed},
	}
	covered := make(map[wire.ResultStatus]bool)
	for _, c := range cases {
		covered[c.status] = true
		err := errorFromStatus(c.status)
		if c.want == nil {
			if err != nil {
				t.Fatalf("status %d mapped to %v, want nil", c.status, err)
			}
		} else if !errors.Is(err, c.want) {
			t.Fatalf("status %d mapped to %v, want errors.Is(%v)", c.status, err, c.want)
		}
		if got := statusFromError(err); got != c.back {
			t.Fatalf("status %d round-tripped to %d, want %d", c.status, got, c.back)
		}
	}
	// The table must cover the whole enum; a new wire status without a
	// taxonomy decision fails here.
	for st := wire.StatusOK; st <= wire.StatusClosed; st++ {
		if !covered[st] {
			t.Fatalf("wire.ResultStatus %d has no taxonomy mapping in this test", st)
		}
	}
}

// TestErrorSentinelsDistinct: each sentinel matches itself and nothing else,
// so errors.Is branching is unambiguous.
func TestErrorSentinelsDistinct(t *testing.T) {
	sentinels := []error{ErrNotFound, ErrNotOwner, ErrSessionBroken,
		ErrClosed, ErrRejected, ErrInternal}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("errors.Is(%v, %v) = %v", a, b, i == j)
			}
		}
	}
}

// TestSessionBrokenError: the decorated context error satisfies errors.Is
// for both the sentinel and its cause.
func TestSessionBrokenError(t *testing.T) {
	cause := errors.New("deadline exceeded")
	err := error(&sessionBrokenError{sessions: 2, cause: cause})
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatal("sessionBrokenError does not match ErrSessionBroken")
	}
	if !errors.Is(err, cause) {
		t.Fatal("sessionBrokenError does not unwrap to its cause")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("sessionBrokenError matches an unrelated sentinel")
	}
}

// TestRejectionError: admin refusals keep the server's detail while matching
// ErrRejected.
func TestRejectionError(t *testing.T) {
	err := rejectionError(errors.New("no checkpoint device configured"))
	if !errors.Is(err, ErrRejected) {
		t.Fatal("rejectionError does not match ErrRejected")
	}
}
