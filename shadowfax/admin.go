package shadowfax

import (
	"context"

	"repro/internal/client"
)

// Admin is the unified control-plane handle: durable checkpoints, log
// compaction, migration, and stats — each an RPC on its own short-lived
// connection, the paper's Migrate() RPC model (§3.3). Admin operations are
// deliberately not on Client: the data plane stays a pure key-value session
// API, and admin traffic never competes with a session's pipelined batches.
//
// An Admin is stateless and safe for concurrent use. Every method observes
// its context while awaiting the server's response.
type Admin struct {
	rpc *client.Admin
}

// NewAdmin builds an admin handle over the cluster's transport and metadata
// store. Out-of-process servers must be registered first (Cluster.Discover).
func NewAdmin(cluster *Cluster) *Admin {
	return &Admin{rpc: client.NewAdmin(cluster.tr, cluster.meta)}
}

// Checkpoint asks serverID to take a durable checkpoint now and waits for
// the committed image's identity. A server without a checkpoint device
// refuses with ErrRejected.
func (a *Admin) Checkpoint(ctx context.Context, serverID string) (CheckpointInfo, error) {
	resp, err := a.rpc.Checkpoint(ctx, serverID)
	if err != nil {
		if resp.Err != "" {
			return CheckpointInfo{}, rejectionError(err)
		}
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{Version: resp.Version, LogTail: resp.Tail}, nil
}

// Compact asks serverID to run one log-compaction pass now (§3.3.3) and
// waits for the pass's statistics. A refusal (e.g. a migration is in flight)
// surfaces as ErrRejected.
func (a *Admin) Compact(ctx context.Context, serverID string) (CompactionStats, error) {
	resp, err := a.rpc.Compact(ctx, serverID)
	if err != nil {
		if resp.Err != "" {
			return CompactionStats{}, rejectionError(err)
		}
		return CompactionStats{}, err
	}
	return compactionStatsFromWire(resp), nil
}

// Migrate sends the Migrate() RPC to source, asking it to move
// [rng.Start, rng.End) to target (§3.3). It returns once the source
// acknowledges that the migration has begun; progress is observable via
// Cluster.PendingMigrations and Stats.
func (a *Admin) Migrate(ctx context.Context, source, target string, rng HashRange) error {
	return a.rpc.Migrate(ctx, source, target, rng)
}

// Drain asks serverID to migrate every range it owns to the surviving
// servers and retire itself from the metadata store (scale-in). It returns
// once the drain finishes; the server keeps serving until each range's
// ownership transfers, then should be shut down. A refusal (standby, replica
// attached, or the drain would leave a range unowned) surfaces as
// ErrRejected; an interrupted drain may be retried.
func (a *Admin) Drain(ctx context.Context, serverID string) (DrainResult, error) {
	resp, err := a.rpc.Drain(ctx, serverID)
	if err != nil {
		if resp.Err != "" {
			return DrainResult{}, rejectionError(err)
		}
		return DrainResult{}, err
	}
	return DrainResult{Moved: int(resp.Moved), Retired: resp.Retired}, nil
}

// Stats fetches a snapshot of serverID's identity, view number and counters.
func (a *Admin) Stats(ctx context.Context, serverID string) (ServerStats, error) {
	resp, err := a.rpc.Stats(ctx, serverID)
	if err != nil {
		return ServerStats{}, err
	}
	return serverStatsFromWire(resp), nil
}

// Rebalance asks serverID's hosted balancer (WithAutoScale) to run one
// planning pass now and returns its decision — which may be "no action"
// with the reason. A server without a balancer refuses with ErrRejected.
func (a *Admin) Rebalance(ctx context.Context, serverID string) (RebalanceDecision, error) {
	resp, err := a.rpc.Rebalance(ctx, serverID)
	if err != nil {
		if resp.Err != "" {
			return RebalanceDecision{}, rejectionError(err)
		}
		return RebalanceDecision{}, err
	}
	return rebalanceDecisionFromWire(resp), nil
}

// BalanceStatus fetches serverID's balancer status: pass/migration
// counters, remaining cooldown, the last planning decision, and the
// per-server load rates the next decision will use. Enabled is false when
// the server hosts no balancer.
func (a *Admin) BalanceStatus(ctx context.Context, serverID string) (BalancerStatus, error) {
	resp, err := a.rpc.BalanceStatus(ctx, serverID)
	if err != nil {
		return BalancerStatus{}, err
	}
	return balancerStatusFromWire(resp), nil
}
