package shadowfax_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/shadowfax"
)

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationFailover is the failover acceptance test at the public API:
// a primary with a hot standby takes writes, the primary dies abruptly, the
// standby promotes itself, and a client that replays its sessions reads
// every acknowledged write back — zero acked-write loss — then keeps writing
// against the promoted server.
func TestReplicationFailover(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()

	primary, err := shadowfax.NewServer(cluster, "p", shadowfax.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	// Seed some pre-attach state so the base sync has something to ship.
	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	key := func(i int) []byte { return []byte(fmt.Sprintf("repl-%04d", i)) }
	val := func(i int) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i))
		return b
	}
	const preKeys = 64
	for i := 0; i < preKeys; i++ {
		if err := cl.Set(ctx, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	standby, err := shadowfax.NewServer(cluster, "pb", shadowfax.WithThreads(2),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      "p",
			HeartbeatEvery: 10 * time.Millisecond,
			FailoverAfter:  150 * time.Millisecond,
			AckTimeout:     2 * time.Second,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	if !standby.IsStandby() {
		t.Fatal("fresh replica does not report IsStandby")
	}

	waitFor(t, 10*time.Second, "base sync", func() bool {
		r, ok := cluster.Replicas()["p"]
		return ok && r.Synced
	})
	if !primary.Replicating() {
		t.Fatal("primary does not report an attached replica")
	}

	// Live-stream phase: more writes while the backup mirrors them. Every
	// one of these is acknowledged, so every one must survive the failover.
	const liveKeys = 128
	for i := preKeys; i < preKeys+liveKeys; i++ {
		if err := cl.Set(ctx, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the primary abruptly — no checkpoint, no drain. The standby's
	// failure detector must notice the silent stream, probe, and promote.
	viewBefore, _ := cluster.View("p")
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "promotion", func() bool { return !standby.IsStandby() })
	v, err := cluster.View("p")
	if err != nil {
		t.Fatal(err)
	}
	if v.Number <= viewBefore.Number {
		t.Fatalf("promotion did not bump the view: %d -> %d", viewBefore.Number, v.Number)
	}
	if _, ok := cluster.Replicas()["p"]; ok {
		t.Fatal("replica registration survived promotion")
	}

	// The client's sessions broke with the primary; replay them through the
	// §3.3.1 recovery path against the promoted server, then verify every
	// acknowledged write.
	if err := cl.RecoverSessions(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < preKeys+liveKeys; i++ {
		got, err := cl.Get(ctx, key(i))
		if err != nil {
			t.Fatalf("get %s after failover: %v", key(i), err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(i) {
			t.Fatalf("key %s = %v after failover, want %d", key(i), got, i)
		}
	}

	// The promoted server is a full primary: new writes land.
	if err := cl.Set(ctx, []byte("post-failover"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.Get(ctx, []byte("post-failover")); err != nil || string(got) != "ok" {
		t.Fatalf("write to promoted server: %q %v", got, err)
	}
}

// TestReplicationBackupDeath pins the primary-side failure detector: when
// the standby dies mid-stream, the primary detaches it (releasing held
// responses) and keeps serving with no replica attached.
func TestReplicationBackupDeath(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()

	primary, err := shadowfax.NewServer(cluster, "p", shadowfax.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	standby, err := shadowfax.NewServer(cluster, "pb", shadowfax.WithThreads(1),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      "p",
			HeartbeatEvery: 10 * time.Millisecond,
			FailoverAfter:  10 * time.Second, // never promote in this test
			AckTimeout:     200 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	waitFor(t, 10*time.Second, "base sync", func() bool {
		r, ok := cluster.Replicas()["p"]
		return ok && r.Synced
	})

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cl.Set(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
	// The primary must notice the ack silence, detach, and keep acking
	// writes (held responses release on detach, so this Set cannot hang).
	waitFor(t, 10*time.Second, "detach", func() bool { return !primary.Replicating() })
	if _, ok := cluster.Replicas()["p"]; ok {
		t.Fatal("replica registration survived detach")
	}
	if err := cl.Set(ctx, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.Get(ctx, []byte("k")); err != nil || string(got) != "v2" {
		t.Fatalf("write after detach: %q %v", got, err)
	}
}

// TestDrainScaleIn pins manual scale-in end to end: a three-server cluster
// drains one server under a live client, its ranges migrate to the
// survivors, the server retires from the metadata store, and every key is
// still readable. Draining the last server standing is refused.
func TestDrainScaleIn(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()

	mid := uint64(1) << 63
	a, err := shadowfax.NewServer(cluster, "a", shadowfax.WithThreads(2),
		shadowfax.WithSampleDuration(10*time.Millisecond),
		shadowfax.WithOwnership(shadowfax.HashRange{Start: 0, End: mid}))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := shadowfax.NewServer(cluster, "b", shadowfax.WithThreads(2),
		shadowfax.WithSampleDuration(10*time.Millisecond),
		shadowfax.WithOwnership(shadowfax.HashRange{Start: mid, End: ^uint64(0)}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	key := func(i int) []byte { return []byte(fmt.Sprintf("drain-%04d", i)) }
	const keys = 256
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Drain b: its range must migrate to a and b must disappear.
	res, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Retired || res.Moved < 1 {
		t.Fatalf("drain result = %+v, want retired with >=1 range moved", res)
	}
	servers := cluster.Servers()
	for _, id := range servers {
		if id == "b" {
			t.Fatalf("b still registered after drain: %v", servers)
		}
	}
	av, _ := cluster.View("a")
	var total uint64
	for _, r := range av.Ranges {
		total += r.End - r.Start
	}
	if total != ^uint64(0) {
		t.Fatalf("a does not own the full space after drain: %v", av.Ranges)
	}

	// Retrying the drain is a no-op (the server is already retired).
	res2, err := b.Drain()
	if err != nil {
		t.Fatalf("retried drain: %v", err)
	}
	if res2.Moved != 0 {
		t.Fatalf("retried drain moved %d ranges, want 0", res2.Moved)
	}
	b.Close()

	// Every key survived the drain, served by a.
	if err := cl.RecoverSessions(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		got, err := cl.Get(ctx, key(i))
		if err != nil || string(got) != string(key(i)) {
			t.Fatalf("key %s after drain: %q %v", key(i), got, err)
		}
	}

	// Draining the last server is refused: its range would be unowned.
	if _, err := a.Drain(); !errors.Is(err, shadowfax.ErrRejected) {
		t.Fatalf("drain of last server: got %v, want ErrRejected", err)
	}
}
