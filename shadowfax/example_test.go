package shadowfax_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/shadowfax"
)

// ExampleClient boots a server in-process, connects a client, and runs the
// four data-plane operations synchronously.
func ExampleClient() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	srv, err := shadowfax.NewServer(cluster, "server-1")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Set(ctx, []byte("greeting"), []byte("hello, shadowfax")); err != nil {
		log.Fatal(err)
	}
	v, err := cl.Get(ctx, []byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)

	// Read-modify-write: values are 8-byte little-endian counters by
	// default; inputs are deltas.
	one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	for i := 0; i < 3; i++ {
		if err := cl.RMW(ctx, []byte("clicks"), one); err != nil {
			log.Fatal(err)
		}
	}
	v, _ = cl.Get(ctx, []byte("clicks"))
	fmt.Printf("clicks = %d\n", v[0])

	if err := cl.Delete(ctx, []byte("greeting")); err != nil {
		log.Fatal(err)
	}
	_, err = cl.Get(ctx, []byte("greeting"))
	fmt.Printf("after delete: not found = %v\n", errors.Is(err, shadowfax.ErrNotFound))

	// Output:
	// greeting = "hello, shadowfax"
	// clicks = 3
	// after delete: not found = true
}

// ExampleClient_async pipelines a burst of writes through pooled Futures and
// settles them with one Drain.
func ExampleClient_async() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	srv, err := shadowfax.NewServer(cluster, "server-1")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cl, err := shadowfax.Dial(cluster, shadowfax.WithBatchOps(64))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user-%04d", i)
		cl.SetAsync([]byte(key), []byte("profile")).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	f := cl.GetAsync([]byte("user-0042"))
	cl.Flush()
	v, err := f.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-0042 = %q\n", v)
	f.Release()

	// Output:
	// user-0042 = "profile"
}

// ExampleNewServer carves the hash space across two servers; the client
// routes by ownership.
func ExampleNewServer() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	half := ^uint64(0) / 2
	for i, rng := range []shadowfax.HashRange{
		{Start: 0, End: half},
		{Start: half, End: ^uint64(0)},
	} {
		srv, err := shadowfax.NewServer(cluster, fmt.Sprintf("node-%d", i+1),
			shadowfax.WithThreads(1),
			shadowfax.WithOwnership(rng),
			shadowfax.WithMemoryBudget(14, 32, 16))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
	}

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("servers: %v\n", cluster.Servers())

	// Output:
	// servers: [node-1 node-2]
}

// ExampleAdmin drives the control plane: a durable checkpoint and a stats
// snapshot over the wire.
func ExampleAdmin() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	ckptDev := shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2)
	defer ckptDev.Close()
	srv, err := shadowfax.NewServer(cluster, "server-1",
		shadowfax.WithCheckpointDevice(ckptDev))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Set(ctx, []byte("durable"), []byte("yes")); err != nil {
		log.Fatal(err)
	}

	admin := shadowfax.NewAdmin(cluster)
	info, err := admin.Checkpoint(ctx, "server-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint version %d committed\n", info.Version)

	st, err := admin.Stats(ctx, "server-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server %s: checkpoints=%d\n", st.ServerID, st.Checkpoints)

	// Output:
	// checkpoint version 1 committed
	// server server-1: checkpoints=1
}
