package shadowfax

import (
	"context"

	"repro/internal/client"
	"repro/internal/ctlplane"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Transport moves frames between clients and servers. The concrete
// implementations are constructed through Cluster options (in-process
// channels or real TCP), each charging the CPU cost model of the network
// stack it simulates.
type Transport = transport.Transport

// NetworkProfile is the CPU cost model of a simulated network stack
// (per-frame and per-byte busy-spin on both sides; Table 2 of the paper).
type NetworkProfile = transport.CostModel

// The paper's network configurations, plus a free profile for tests.
var (
	// NetAccelerated models SmartNIC-offloaded Linux TCP.
	NetAccelerated = transport.AcceleratedTCP
	// NetSoftware models the full software TCP stack.
	NetSoftware = transport.SoftwareTCP
	// NetInfrc models two-sided RDMA (hardware stack, near-zero CPU).
	NetInfrc = transport.Infrc
	// NetTCPIPoIB models TCP over IPoIB.
	NetTCPIPoIB = transport.TCPIPoIB
	// NetFree charges nothing (unit tests, functional runs).
	NetFree = transport.Free
)

// Cluster bundles the fixtures every deployment shares: the metadata
// provider (the paper's ZooKeeper stand-in) and the transport. Servers and
// clients are created against a Cluster; multiple servers on one Cluster
// form a hash-partitioned deployment.
//
// By default the metadata provider is the in-process store — the state of
// record, served to other processes over MsgMeta* RPCs by every server
// created on this cluster. WithRemoteMetadata instead points the cluster at
// such a metadata endpoint in another process, so multi-process deployments
// share one set of live ownership views.
type Cluster struct {
	meta     metadata.Provider
	tr       Transport
	metaAddr string
	remote   *ctlplane.RemoteProvider
}

// ClusterOption configures NewCluster.
type ClusterOption func(*Cluster)

// WithInProcessNetwork selects the in-process channel transport with the
// given cost profile (single-binary deployments; the default, with
// NetAccelerated).
func WithInProcessNetwork(profile NetworkProfile) ClusterOption {
	return func(c *Cluster) { c.tr = transport.NewInMem(profile) }
}

// WithTCPNetwork selects real kernel TCP with length-prefixed frames and the
// given cost profile.
func WithTCPNetwork(profile NetworkProfile) ClusterOption {
	return func(c *Cluster) { c.tr = transport.NewTCP(profile) }
}

// WithTransport installs a caller-provided transport (custom cost models,
// test doubles).
func WithTransport(tr Transport) ClusterOption {
	return func(c *Cluster) { c.tr = tr }
}

// WithRemoteMetadata points the cluster at a metadata endpoint — a
// shadowfax server in another process, reached over this cluster's
// transport at addr — instead of an in-process store. Servers, clients and
// admins created on the cluster then observe (and mutate) the endpoint's
// live ownership views: the multi-process deployment shares one metadata
// state of record. Call Cluster.Close when done to stop the provider's
// background watch loop.
func WithRemoteMetadata(addr string) ClusterOption {
	return func(c *Cluster) { c.metaAddr = addr }
}

// NewCluster creates the shared fixtures for one deployment. The default
// transport is in-process with the accelerated-TCP cost profile.
func NewCluster(opts ...ClusterOption) *Cluster {
	c := &Cluster{
		meta: metadata.NewStore(),
		tr:   transport.NewInMem(transport.AcceleratedTCP),
	}
	for _, o := range opts {
		o(c)
	}
	if c.metaAddr != "" {
		// Built after the options ran so the provider dials over the
		// transport the options selected.
		c.remote = ctlplane.NewRemoteProvider(c.tr, c.metaAddr, ctlplane.RemoteOptions{})
		c.meta = c.remote
	}
	return c
}

// Close releases the cluster's control-plane resources (the remote metadata
// provider's connection and watch loop). Servers and clients created on the
// cluster are closed separately. Close is a no-op for fully in-process
// clusters.
func (c *Cluster) Close() error {
	if c.remote != nil {
		return c.remote.Close()
	}
	return nil
}

// Servers returns the ids of all servers registered in the metadata store,
// sorted.
func (c *Cluster) Servers() []string { return c.meta.Servers() }

// View returns a server's current ownership view.
func (c *Cluster) View(serverID string) (View, error) { return c.meta.GetView(serverID) }

// Ownership returns every server's current ownership view — live cluster
// state when the metadata provider is remote.
func (c *Cluster) Ownership() map[string]View { return c.meta.Ownership() }

// PendingMigrations returns the migrations involving serverID whose
// dependency has not been collected yet (§3.3.1); an empty result means the
// server has no migration in flight.
func (c *Cluster) PendingMigrations(serverID string) []MigrationState {
	return c.meta.PendingMigrationsFor(serverID)
}

// Migrations returns every migration the metadata provider still tracks,
// in-flight or finished-but-uncollected, with their ranges and epochs.
// Filter with MigrationState.InFlight for the live set — the same set
// Admin.BalanceStatus reports over the wire.
func (c *Cluster) Migrations() []MigrationState { return c.meta.Migrations() }

// Replicas returns every attached backup keyed by primary id: who shadows
// whom, the backup's address, and whether its base sync completed. A primary
// disappears from the map when its backup detaches or promotes.
func (c *Cluster) Replicas() map[string]ReplicaState { return c.meta.Replicas() }

// PromotedServers returns the ids whose backup won a promotion (the §3.3.1
// failover linearization point) and whose deposed former primary has not
// been restarted or re-registered. The self-healing balancer uses the same
// set to decide which primaries need a fresh standby provisioned.
func (c *Cluster) PromotedServers() []string { return c.meta.PromotedServers() }

// CancelMigration aborts an in-flight migration by id (§3.3.1): the range
// returns to the source's ownership view and both parties' views advance, so
// clients revalidate their routing. Operators use it to back out a migration
// whose target has failed or stalled; cancelling a migration that already
// completed fails.
func (c *Cluster) CancelMigration(id uint64) error { return c.meta.CancelMigration(id) }

// Discover contacts a server directly by transport address, registers its
// identity, address and ownership view in this cluster's metadata store, and
// returns its stats snapshot. It is the bootstrap handshake for talking to
// an out-of-process server (e.g. shadowfax-cli against shadowfax-server):
// after Discover, Dial and NewAdmin route to the server by its id.
func (c *Cluster) Discover(ctx context.Context, addr string) (ServerStats, error) {
	resp, err := client.NewAdmin(c.tr, c.meta).StatsAddr(ctx, addr)
	if err != nil {
		return ServerStats{}, err
	}
	if _, err := c.meta.RestoreServer(resp.ServerID, viewFromWire(resp)); err != nil {
		return ServerStats{}, err
	}
	c.meta.SetServerAddr(resp.ServerID, addr)
	return serverStatsFromWire(resp), nil
}

// Device is a simulated (or file-backed) storage device for HybridLogs and
// checkpoint images.
type Device = storage.Device

// MemDevice is an in-memory Device with a latency/IOPS model.
type MemDevice = storage.MemDevice

// FileDevice is a real file-backed Device.
type FileDevice = storage.FileDevice

// SharedTier is the shared remote storage tier (the paper's cloud blobs,
// §2.2) that decouples migration from local SSD I/O.
type SharedTier = storage.SharedTier

// LatencyModel parameterizes a Device's simulated performance.
type LatencyModel = storage.LatencyModel

// NewMemDevice creates an in-memory device with the given latency model and
// I/O worker count.
func NewMemDevice(model LatencyModel, workers int) *MemDevice {
	return storage.NewMemDevice(model, workers)
}

// NewFileDevice creates (or reopens) a file-backed device.
func NewFileDevice(path string, model LatencyModel, workers int) (*FileDevice, error) {
	return storage.NewFileDevice(path, model, workers)
}

// NewSharedTier creates a shared remote tier with the given latency model.
func NewSharedTier(model LatencyModel) *SharedTier {
	return storage.NewSharedTier(model)
}
