package shadowfax

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// testCluster boots a one-server cluster on a cost-free in-process
// transport.
func testCluster(t *testing.T, serverOpts ...ServerOption) (*Cluster, *Server) {
	t.Helper()
	cluster := NewCluster(WithInProcessNetwork(NetFree))
	opts := append([]ServerOption{WithThreads(1), WithIndexBuckets(1 << 10),
		WithMemoryBudget(12, 16, 8)}, serverOpts...)
	srv, err := NewServer(cluster, "s1", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return cluster, srv
}

func TestSyncRoundTrip(t *testing.T) {
	cluster, srv := testCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Set(ctx, []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, []byte("k1"))
	if err != nil || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := cl.Get(ctx, []byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := cl.Delete(ctx, []byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, []byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	// RMW counters (default store semantics).
	delta := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	for i := 0; i < 3; i++ {
		if err := cl.RMW(ctx, []byte("ctr"), delta); err != nil {
			t.Fatal(err)
		}
	}
	v, err = cl.Get(ctx, []byte("ctr"))
	if err != nil || len(v) != 8 || v[0] != 3 {
		t.Fatalf("counter = %v, %v", v, err)
	}
	if srv.Stats().OpsCompleted == 0 {
		t.Fatal("server counters never moved")
	}
}

func TestAsyncFuturesAndDrain(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster, WithBatchOps(16))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 500
	for i := 0; i < n; i++ {
		cl.SetAsync(k(i), val(i)).Release() // fire-and-forget via Drain
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Futures waited on individually, out of issue order.
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = cl.GetAsync(k(i))
	}
	cl.Flush()
	for i := n - 1; i >= 0; i-- {
		v, err := futs[i].Wait(ctx)
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("future %d: %q, %v", i, v, err)
		}
		futs[i].Release()
	}
	if got := cl.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after all waits", got)
	}
	st := cl.Stats()
	if st.OpsIssued != 2*n || st.OpsCompleted != 2*n {
		t.Fatalf("client stats: %+v", st)
	}
}

func TestBackgroundPump(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster, WithBackgroundPump(), WithBatchOps(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Fire-and-forget: the pump must complete these without any Wait/Drain.
	for i := 0; i < 100; i++ {
		cl.SetAsync(k(i), val(i)).Release()
	}
	deadline := time.Now().Add(5 * time.Second)
	for cl.Outstanding() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pump never drained: %d outstanding", cl.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
	// Sync ops block on the pump's completions.
	v, err := cl.Get(ctx, k(42))
	if err != nil || !bytes.Equal(v, val(42)) {
		t.Fatalf("Get under pump = %q, %v", v, err)
	}
}

func TestClientThreadsSharding(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster, WithClientThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	const n = 300
	for i := 0; i < n; i++ {
		cl.SetAsync(k(i), val(i))
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := cl.Get(ctx, k(i))
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d: %q, %v", i, v, err)
		}
	}
}

// deadCluster registers a server address that accepts connections but never
// answers: operations route and send, then hang forever.
func deadCluster(t *testing.T) *Cluster {
	t.Helper()
	cluster := NewCluster(WithInProcessNetwork(NetFree))
	if _, err := cluster.tr.Listen("dead"); err != nil {
		t.Fatal(err)
	}
	cluster.meta.RegisterServer("dead", FullRange)
	cluster.meta.SetServerAddr("dead", "dead")
	return cluster
}

func TestContextDeadlineExpiry(t *testing.T) {
	cluster := deadCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Get(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get against dead server = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored: returned after %v", elapsed)
	}
	// Same for Drain.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := cl.Drain(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
}

func TestContextCancellation(t *testing.T) {
	cluster := deadCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Get(ctx, []byte("k"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Get = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation never unblocked the waiter")
	}
}

func TestContextCancellationUnderPump(t *testing.T) {
	cluster := deadCluster(t)
	cl, err := Dial(cluster, WithBackgroundPump())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Get(ctx, []byte("k"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Get = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation never unblocked the pumped waiter")
	}
}

// TestCloseCompletesFutures: Close settles every in-flight Future with
// ErrClosed — the documented no-silent-drop guarantee — and later operations
// fail immediately with ErrClosed.
func TestCloseCompletesFutures(t *testing.T) {
	cluster := deadCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, 10)
	for i := range futs {
		futs[i] = cl.SetAsync(k(i), val(i))
	}
	cl.Flush()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, f := range futs {
		if _, err := f.Wait(ctx); !errors.Is(err, ErrClosed) {
			t.Fatalf("future %d after Close = %v, want ErrClosed", i, err)
		}
		f.Release()
	}
	if err := cl.Set(context.Background(), []byte("late"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set after Close = %v, want ErrClosed", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
}

// TestSessionBrokenSurfaced: when the server goes away mid-session, a
// context expiry is explained with ErrSessionBroken, and RecoverSessions
// against a restarted server completes the stranded operations.
func TestSessionBrokenSurfaced(t *testing.T) {
	cluster := NewCluster(WithInProcessNetwork(NetFree))
	logDev := NewMemDevice(LatencyModel{}, 2)
	defer logDev.Close()
	ckptDev := NewMemDevice(LatencyModel{}, 2)
	defer ckptDev.Close()
	srv, err := NewServer(cluster, "s1", WithThreads(1),
		WithLogDevice(logDev), WithCheckpointDevice(ckptDev),
		WithMemoryBudget(12, 16, 8))
	if err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, []byte("pre"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Close() // crash: devices survive

	// In-flight write against the dead server: deadline expiry must carry
	// the broken-session diagnosis.
	f := cl.SetAsync([]byte("during"), []byte("crash"))
	cl.Flush()
	dctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(dctx); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("Wait against crashed server = %v, want ErrSessionBroken", err)
	}
	if cl.BrokenSessions() == 0 {
		t.Fatal("broken session not tracked")
	}

	// Restart from the image, recover the session, and the future settles.
	srv2, err := NewServer(cluster, "s1", WithThreads(1),
		WithLogDevice(logDev), WithCheckpointDevice(ckptDev),
		WithMemoryBudget(12, 16, 8), WithRecovery())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
	defer rcancel()
	if err := cl.RecoverSessions(rctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(rctx); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(rctx); err != nil {
		t.Fatalf("future after recovery = %v", err)
	}
	f.Release()
	v, err := cl.Get(rctx, []byte("during"))
	if err != nil || !bytes.Equal(v, []byte("crash")) {
		t.Fatalf("recovered write = %q, %v", v, err)
	}
}

func k(i int) []byte   { return []byte(fmt.Sprintf("key-%05d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%05d", i)) }

// TestDialClampsDegenerateOptions: zero/negative thread or flow-control
// options must not produce a client that panics on first use.
func TestDialClampsDegenerateOptions(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster, WithClientThreads(0), WithMaxOutstanding(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set(context.Background(), []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressureRespectsContext: a synchronous call whose shard is at the
// outstanding bound against an unresponsive server must still honor its
// deadline instead of wedging in flow control (which would also hold the
// shard lock against everyone else).
func TestBackpressureRespectsContext(t *testing.T) {
	cluster := deadCluster(t)
	cl, err := Dial(cluster, WithMaxOutstanding(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetAsync([]byte("fills-quota"), []byte("v")) // never completes
	cl.Flush()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Get(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("backpressured Get = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backpressure ignored the deadline: %v", elapsed)
	}
}

// TestReleaseIdempotent: double-releasing a completed Future (defer +
// explicit is the realistic footgun) must not pool the handle twice — two
// pooled copies would arm one handle for two operations at once.
func TestReleaseIdempotent(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	f := cl.SetAsync([]byte("k"), []byte("v"))
	cl.Flush()
	if _, err := f.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	f.Release()
	f.Release() // must be a no-op

	// If the double release poisoned the pool, the next two operations
	// share one Future and their completions collide.
	f1 := cl.GetAsync([]byte("k"))
	f2 := cl.GetAsync([]byte("missing"))
	if f1 == f2 {
		t.Fatal("pool handed the same Future to two operations")
	}
	cl.Flush()
	if v, err := f1.Wait(ctx); err != nil || string(v) != "v" {
		t.Fatalf("f1 = %q, %v", v, err)
	}
	if _, err := f2.Wait(ctx); !errors.Is(err, ErrNotFound) {
		t.Fatalf("f2 = %v, want ErrNotFound", err)
	}
	f1.Release()
	f2.Release()
}
