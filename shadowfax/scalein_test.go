package shadowfax_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/shadowfax"
)

// TestAutoScaleInDrainsColdServer is the scale-in acceptance test: a
// three-server cluster where one server's range receives no traffic. Nothing
// ever calls Drain — the balancer alone must observe the cold streak, drain
// the cold server's range into the survivors via an ordinary migration, and
// retire it from the metadata store, all while a live client keeps writing.
// The drained server's keys must survive on the new owner.
func TestAutoScaleInDrainsColdServer(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()

	coldStart := uint64(3) << 62 // top quarter of the hash space
	mid := uint64(1) << 63
	host, err := shadowfax.NewServer(cluster, "host",
		shadowfax.WithThreads(2),
		shadowfax.WithSampleDuration(10*time.Millisecond),
		shadowfax.WithOwnership(shadowfax.HashRange{Start: 0, End: mid}),
		shadowfax.WithAutoScale(shadowfax.AutoScaleConfig{
			Every:        30 * time.Millisecond,
			Imbalance:    1000, // never split in this test
			Cooldown:     50 * time.Millisecond,
			MinOpsPerSec: 1 << 30, // the idle guard keeps planMoves quiet
		}),
		shadowfax.WithScaleIn(shadowfax.ScaleInConfig{
			BelowOpsPerSec: 50,
			AfterPasses:    3,
			MinServers:     2,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	peer, err := shadowfax.NewServer(cluster, "peer", shadowfax.WithThreads(1),
		shadowfax.WithSampleDuration(10*time.Millisecond),
		shadowfax.WithOwnership(shadowfax.HashRange{Start: mid, End: coldStart}))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	cold, err := shadowfax.NewServer(cluster, "cold", shadowfax.WithThreads(1),
		shadowfax.WithSampleDuration(10*time.Millisecond),
		shadowfax.WithOwnership(shadowfax.HashRange{Start: coldStart, End: ^uint64(0)}))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Seed a few keys into the cold range so the drain moves real data,
	// then leave it alone.
	var coldKeys, hotKeys [][]byte
	for i := 0; len(coldKeys) < 16 || len(hotKeys) < 64; i++ {
		k := []byte(fmt.Sprintf("scalein-%05d", i))
		if faster.HashOf(k) >= coldStart {
			coldKeys = append(coldKeys, k)
		} else {
			hotKeys = append(hotKeys, k)
		}
	}
	for _, k := range coldKeys {
		if err := cl.Set(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}

	// Live load on the surviving servers' ranges while the balancer watches
	// the cold server idle. The balancer must drain and retire it.
	retired := false
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		for _, k := range hotKeys {
			if err := cl.Set(ctx, k, k); err != nil {
				t.Fatal(err)
			}
		}
		still := false
		for _, id := range cluster.Servers() {
			if id == "cold" {
				still = true
			}
		}
		if !still && len(cluster.PendingMigrations("host")) == 0 {
			retired = true
			break
		}
	}
	if !retired {
		t.Fatalf("balancer never drained the cold server; servers=%v, status=%+v",
			cluster.Servers(), must(shadowfax.NewAdmin(cluster).BalanceStatus(ctx, "host")))
	}

	// The survivors own the full space and the cold keys moved with it.
	var total uint64
	for _, id := range cluster.Servers() {
		v, err := cluster.View(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range v.Ranges {
			total += r.End - r.Start
		}
	}
	if total != ^uint64(0) {
		t.Fatalf("surviving views do not cover the hash space")
	}
	if err := cl.RecoverSessions(ctx); err != nil {
		t.Fatal(err)
	}
	for _, k := range coldKeys {
		got, err := cl.Get(ctx, k)
		if err != nil || string(got) != string(k) {
			t.Fatalf("cold key %s after scale-in: %q %v", k, got, err)
		}
	}
}

func must[T any](v T, err error) T { return v }
