package shadowfax

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// Client is a cluster-aware handle over one or more client threads
// (§3.1.1). Operations are hashed to their owning server, buffered into
// view-tagged batches, pipelined, and transparently re-routed when ownership
// moves. The synchronous methods (Get/Set/RMW/Delete) block on a context;
// the *Async variants return pooled Futures.
//
// A Client is safe for concurrent use: each underlying thread is guarded by
// a mutex, and waiters drive the thread's poll loop themselves unless a
// background pump goroutine was enabled with WithBackgroundPump.
type Client struct {
	shards []*shard
	next   atomic.Uint64 // round-robin shard picker

	maxOutstanding int
	pumped         bool
	pumpStop       chan struct{}
	pumpDone       chan struct{}
	closed         atomic.Bool

	futures sync.Pool
}

// shard is one single-owner client thread plus the lock that serializes its
// users (issuers, waiters, the pump).
type shard struct {
	mu sync.Mutex
	t  *client.Thread
}

type dialConfig struct {
	threads        int
	maxOutstanding int
	pump           bool
	cfg            client.Config
}

// DialOption configures Dial.
type DialOption func(*dialConfig)

// WithClientThreads shards the client across n independent threads
// (round-robin); each thread owns its sessions and batches. Default 1.
func WithClientThreads(n int) DialOption {
	return func(dc *dialConfig) { dc.threads = n }
}

// WithBatchOps flushes a session's buffer at this many operations
// (default 256).
func WithBatchOps(n int) DialOption {
	return func(dc *dialConfig) { dc.cfg.BatchOps = n }
}

// WithBatchBytes flushes earlier if the encoded batch reaches this size
// (default 32 KiB).
func WithBatchBytes(n int) DialOption {
	return func(dc *dialConfig) { dc.cfg.BatchBytes = n }
}

// WithMaxInflightBatches bounds pipelining per session (default 8).
func WithMaxInflightBatches(n int) DialOption {
	return func(dc *dialConfig) { dc.cfg.MaxInflightBatches = n }
}

// WithMaxOutstanding bounds issued-but-uncompleted operations per thread;
// issuing past the bound drives the poll loop until there is room
// (default 4096). This is the client-side flow control the examples used to
// hand-roll.
func WithMaxOutstanding(n int) DialOption {
	return func(dc *dialConfig) { dc.maxOutstanding = n }
}

// WithBackgroundPump starts a goroutine that continuously flushes and polls
// every shard, so fire-and-forget operations complete without anyone
// waiting on them. Without it, progress is driven by Wait/Drain/Flush
// callers (the classic poll-driven mode).
func WithBackgroundPump() DialOption {
	return func(dc *dialConfig) { dc.pump = true }
}

// Dial connects a client to the cluster. The connection to each server is
// established lazily, on the first operation routed to it.
func Dial(cluster *Cluster, opts ...DialOption) (*Client, error) {
	dc := dialConfig{threads: 1, maxOutstanding: 4096}
	for _, o := range opts {
		o(&dc)
	}
	if dc.threads < 1 {
		dc.threads = 1
	}
	if dc.maxOutstanding < 1 {
		dc.maxOutstanding = 4096
	}
	dc.cfg.Transport = cluster.tr
	dc.cfg.Meta = cluster.meta

	c := &Client{maxOutstanding: dc.maxOutstanding}
	for i := 0; i < dc.threads; i++ {
		th, err := client.NewThread(dc.cfg)
		if err != nil {
			for _, sh := range c.shards {
				sh.t.Close()
			}
			return nil, err
		}
		c.shards = append(c.shards, &shard{t: th})
	}
	if dc.pump {
		c.pumped = true
		c.pumpStop = make(chan struct{})
		c.pumpDone = make(chan struct{})
		go c.pumpLoop()
	}
	return c, nil
}

// pick selects the shard for a new operation.
func (c *Client) pick() *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[c.next.Add(1)%uint64(len(c.shards))]
}

// newFuture takes a pooled Future and arms it for one completion.
func (c *Client) newFuture(sh *shard) *Future {
	f, _ := c.futures.Get().(*Future)
	if f == nil {
		f = &Future{c: c, ch: make(chan struct{}, 1)}
		f.cb = f.complete
	}
	f.sh = sh
	f.status = wire.StatusOK
	f.val = f.val[:0]
	f.done.Store(false)
	select {
	case <-f.ch: // drop any stale token from an abandoned lifetime
	default:
	}
	return f
}

// issue routes one operation to a shard and returns its armed Future. With
// flush set, the shard's partial batch is pushed out immediately (the
// synchronous methods are about to wait on it). ctx bounds only the
// flow-control wait; the operation itself is bounded by whatever waits on
// the Future.
func (c *Client) issue(ctx context.Context, kind wire.OpKind, key, value []byte, flush bool) *Future {
	sh := c.pick()
	f := c.newFuture(sh)
	sh.mu.Lock()
	c.backpressureLocked(ctx, sh)
	switch kind {
	case wire.OpRead:
		sh.t.Read(key, f.cb) //nolint:errcheck // issue failures complete f via the callback
	case wire.OpUpsert:
		sh.t.Upsert(key, value, f.cb) //nolint:errcheck
	case wire.OpRMW:
		sh.t.RMW(key, value, f.cb) //nolint:errcheck
	case wire.OpDelete:
		sh.t.Delete(key, f.cb) //nolint:errcheck
	}
	if flush {
		sh.t.Flush()
	}
	sh.mu.Unlock()
	return f
}

// backpressureLocked enforces WithMaxOutstanding: the caller holds sh.mu.
// Flow control is advisory — when ctx is done (a synchronous caller's
// deadline) the wait stops and the operation is issued anyway, so the
// caller's Wait can surface the context error instead of wedging here.
func (c *Client) backpressureLocked(ctx context.Context, sh *shard) {
	for sh.t.Outstanding() >= c.maxOutstanding {
		if c.closed.Load() {
			return // Close is waiting for the lock; let it settle the ops
		}
		if ctx.Err() != nil {
			return
		}
		sh.t.Flush()
		if sh.t.Poll() == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// step drives one flush+poll iteration on a shard (used by waiters when no
// background pump runs).
func (c *Client) step(sh *shard) {
	sh.mu.Lock()
	sh.t.Flush()
	n := sh.t.Poll()
	sh.mu.Unlock()
	if n == 0 {
		time.Sleep(20 * time.Microsecond)
	}
}

func (c *Client) pumpLoop() {
	defer close(c.pumpDone)
	for {
		select {
		case <-c.pumpStop:
			return
		default:
		}
		progress := 0
		for _, sh := range c.shards {
			sh.mu.Lock()
			sh.t.Flush()
			progress += sh.t.Poll()
			sh.mu.Unlock()
		}
		if progress == 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// GetAsync issues an asynchronous read.
func (c *Client) GetAsync(key []byte) *Future {
	return c.issue(context.Background(), wire.OpRead, key, nil, false)
}

// SetAsync issues an asynchronous blind write.
func (c *Client) SetAsync(key, value []byte) *Future {
	return c.issue(context.Background(), wire.OpUpsert, key, value, false)
}

// RMWAsync issues an asynchronous read-modify-write with the given input
// (the default store semantics treat values as 8-byte little-endian
// counters and inputs as deltas).
func (c *Client) RMWAsync(key, input []byte) *Future {
	return c.issue(context.Background(), wire.OpRMW, key, input, false)
}

// DeleteAsync issues an asynchronous delete.
func (c *Client) DeleteAsync(key []byte) *Future {
	return c.issue(context.Background(), wire.OpDelete, key, nil, false)
}

// Get reads key and returns a copy of its value. A missing key returns
// ErrNotFound.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, error) {
	f := c.issue(ctx, wire.OpRead, key, nil, true)
	v, err := f.Wait(ctx)
	if err != nil {
		f.Release()
		return nil, err
	}
	out := append([]byte(nil), v...)
	f.Release()
	return out, nil
}

// Set writes value under key (blind upsert).
func (c *Client) Set(ctx context.Context, key, value []byte) error {
	return c.waitRelease(ctx, c.issue(ctx, wire.OpUpsert, key, value, true))
}

// RMW applies a read-modify-write with the given input to key, initializing
// the key if absent.
func (c *Client) RMW(ctx context.Context, key, input []byte) error {
	return c.waitRelease(ctx, c.issue(ctx, wire.OpRMW, key, input, true))
}

// Delete removes key. Deleting an absent key succeeds (a tombstone is
// written).
func (c *Client) Delete(ctx context.Context, key []byte) error {
	return c.waitRelease(ctx, c.issue(ctx, wire.OpDelete, key, nil, true))
}

func (c *Client) waitRelease(ctx context.Context, f *Future) error {
	_, err := f.Wait(ctx)
	f.Release()
	return err
}

// Flush pushes every shard's partial batches to the wire.
func (c *Client) Flush() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.t.Flush()
		sh.mu.Unlock()
	}
}

// Drain flushes and polls until no operations are outstanding or ctx is
// done. The context is observed every iteration, even while completions keep
// arriving.
func (c *Client) Drain(ctx context.Context) error {
	for {
		outstanding, progress := 0, 0
		for _, sh := range c.shards {
			sh.mu.Lock()
			sh.t.Flush()
			progress += sh.t.Poll()
			outstanding += sh.t.Outstanding()
			sh.mu.Unlock()
		}
		if outstanding == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return c.ctxError(err)
		}
		if progress == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Outstanding returns the number of issued-but-uncompleted operations across
// all shards.
func (c *Client) Outstanding() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.t.Outstanding()
		sh.mu.Unlock()
	}
	return n
}

// BrokenSessions reports how many server connections died and await
// RecoverSessions.
func (c *Client) BrokenSessions() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.t.BrokenSessions()
		sh.mu.Unlock()
	}
	return n
}

// FailBrokenSessions gives up on every broken session across the client's
// shards: parked operations complete with ErrSessionBroken (their Futures
// unblock, their callbacks fire) and the sessions are dropped so later
// operations dial fresh. Use it when RecoverSessions has exhausted its
// retries — the server is gone for good or ownership moved elsewhere — and
// waiting callers must fail promptly instead of blocking forever. An
// ErrSessionBroken write may or may not have executed; exactly-once holds
// only for operations reconciled through RecoverSessions. Returns the number
// of operations failed.
func (c *Client) FailBrokenSessions() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.t.FailBroken()
		sh.mu.Unlock()
	}
	return n
}

// RecoverSessions reconciles every session against its (possibly restarted)
// server: operations at or below the server's durable prefix complete
// without re-execution, the rest replay in order — exactly-once update
// semantics across a server crash (§3.3.1). Call it after a crash/restart;
// it can be retried on error.
func (c *Client) RecoverSessions(ctx context.Context) error {
	for _, sh := range c.shards {
		// Cancellation is observed between shards; each shard's handshake
		// is bounded by the context's *remaining* time (recomputed every
		// iteration so N shards cannot stack N full timeouts), capped at a
		// 5s default for deadline-less contexts.
		if err := ctx.Err(); err != nil {
			return err
		}
		timeout := 5 * time.Second
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < timeout {
				timeout = rem
			}
		}
		sh.mu.Lock()
		err := sh.t.RecoverSessions(timeout)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates the client's counters across its shards.
func (c *Client) Stats() ClientStats {
	var out ClientStats
	for _, sh := range c.shards {
		sh.mu.Lock()
		st := sh.t.Stats()
		sh.mu.Unlock()
		out.OpsIssued += st.OpsIssued
		out.OpsCompleted += st.OpsCompleted
		out.BatchesSent += st.BatchesSent
		out.BatchesRejected += st.BatchesRejected
		out.BatchesShed += st.BatchesShed
		out.Refreshes += st.Refreshes
	}
	return out
}

// Close stops the pump and tears down every session. Outstanding operations
// complete with ErrClosed — their Futures unblock and their callbacks fire;
// none are silently dropped. Operations issued after Close fail with
// ErrClosed immediately. Close is idempotent.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.pumpStop != nil {
		close(c.pumpStop)
		<-c.pumpDone
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.t.Close()
		sh.mu.Unlock()
	}
	return nil
}

// ctxError decorates a context error with ErrSessionBroken when the stall is
// explained by dead server connections.
func (c *Client) ctxError(err error) error {
	if n := c.BrokenSessions(); n > 0 {
		return &sessionBrokenError{sessions: n, cause: err}
	}
	return err
}
