package shadowfax

import (
	"time"

	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/wire"
)

// Re-exported metadata types. These are aliases, not copies: values returned
// by this package interoperate with values a program builds itself.
type (
	// HashRange is a half-open interval [Start, End) of 64-bit key hashes.
	HashRange = metadata.HashRange
	// View is a server's ownership view: a strictly-increasing number plus
	// the hash ranges owned at that number (§3.2).
	View = metadata.View
	// MigrationState is one in-flight migration's fault-tolerance record in
	// the metadata store (§3.3.1).
	MigrationState = metadata.MigrationState
	// MigrationReport summarizes a finished (or running) migration on the
	// source server.
	MigrationReport = core.MigrationReport
	// ReplicaState describes one attached backup in the metadata store:
	// which primary it shadows, where it listens, and whether its base sync
	// completed (only a synced backup may promote).
	ReplicaState = metadata.ReplicaState
)

// FullRange covers the entire hash space.
var FullRange = metadata.FullRange

// ServerStats is a point-in-time snapshot of a server's identity, ownership
// view number and operational counters. The same snapshot shape is returned
// by Server.Stats (in-process) and Admin.Stats (over the wire).
type ServerStats struct {
	ServerID   string
	ViewNumber uint64

	OpsCompleted    uint64
	BatchesAccepted uint64
	BatchesRejected uint64
	// BatchesShed counts batches refused by admission control (per-connection
	// held-response backlog at the MaxConnBacklog bound).
	BatchesShed   uint64
	DecodeErrors  uint64
	PendingOps    int64 // target-side pending set during migration (Fig. 12)
	RemoteFetches uint64
	ViewRefreshes uint64

	Checkpoints        uint64
	CheckpointFailures uint64

	Compactions           uint64
	CompactionFailures    uint64
	CompactRelocated      uint64
	CompactReclaimedBytes uint64

	// StorePendingReads counts the pending storage I/Os the FASTER store
	// has issued (cold reads served off the SSD path).
	StorePendingReads uint64
	// PendingCoalesced counts pending reads that shared another pending
	// read's in-flight device I/O instead of issuing their own.
	PendingCoalesced uint64
	// ReadCacheHits counts in-memory read hits on keys the second-chance
	// read cache promoted back into the mutable region (tag-based, so
	// approximate); ReadCacheCopies counts the promotions themselves.
	ReadCacheHits   uint64
	ReadCacheCopies uint64
	// DeviceBatchReads counts batched device read submissions by the
	// pending-read pipeline.
	DeviceBatchReads uint64

	// LogBytes is the server's HybridLog footprint (tail − begin address).
	LogBytes uint64

	// BalancePasses / BalanceMigrations report the hosted auto-scale
	// balancer (zero unless the server was built WithAutoScale): planning
	// passes run and migrations triggered.
	BalancePasses     uint64
	BalanceMigrations uint64
}

func serverStatsFromWire(r wire.StatsResp) ServerStats {
	return ServerStats{
		ServerID:   r.ServerID,
		ViewNumber: r.ViewNumber,

		OpsCompleted:    r.OpsCompleted,
		BatchesAccepted: r.BatchesAccepted,
		BatchesRejected: r.BatchesRejected,
		BatchesShed:     r.BatchesShed,
		DecodeErrors:    r.DecodeErrors,
		PendingOps:      r.PendingOps,
		RemoteFetches:   r.RemoteFetches,
		ViewRefreshes:   r.ViewRefreshes,

		Checkpoints:        r.Checkpoints,
		CheckpointFailures: r.CheckpointFailures,

		Compactions:           r.Compactions,
		CompactionFailures:    r.CompactionFailures,
		CompactRelocated:      r.CompactRelocated,
		CompactReclaimedBytes: r.CompactReclaimedBytes,

		StorePendingReads: r.StorePendingReads,
		PendingCoalesced:  r.PendingCoalesced,
		ReadCacheHits:     r.ReadCacheHits,
		ReadCacheCopies:   r.ReadCacheCopies,
		DeviceBatchReads:  r.DeviceBatchReads,

		LogBytes:          r.LogBytes,
		BalancePasses:     r.BalancePasses,
		BalanceMigrations: r.BalanceMigrations,
	}
}

// RebalanceDecision is one balancer planning pass's outcome. When Acted is
// false, Reason explains why the pass held off (priming, cooldown, balanced
// load, too few samples, ...).
type RebalanceDecision struct {
	Acted  bool
	Source string
	Target string
	Range  HashRange
	Reason string
}

func rebalanceDecisionFromWire(r wire.RebalanceResp) RebalanceDecision {
	return RebalanceDecision{
		Acted: r.Acted, Source: r.Source, Target: r.Target,
		Range:  HashRange{Start: r.RangeStart, End: r.RangeEnd},
		Reason: r.Reason,
	}
}

// BalancerStatus is a balancer-enabled server's control-plane snapshot.
type BalancerStatus struct {
	// Enabled is false when the queried server hosts no balancer.
	Enabled bool
	// Passes / Migrations count planning passes and triggered migrations.
	Passes     uint64
	Migrations uint64
	// Cooldown is the remaining hold-off after the last triggered
	// migration (0 = armed).
	Cooldown time.Duration
	// Last is the most recent planning decision.
	Last RebalanceDecision
	// Rates is the last pass's observed per-server load (ops/sec).
	Rates map[string]float64
	// InFlight is the cluster's current set of in-flight migrations with
	// their ranges and epochs. Every server reports it (it is metadata
	// state, not balancer state), even when Enabled is false.
	InFlight []MigrationState
	// DegradedFor is how long the server's metadata provider has been
	// answering from its cached snapshot because the metadata endpoint is
	// unreachable (zero when healthy, and always zero for servers using the
	// in-process store).
	DegradedFor time.Duration
}

func balancerStatusFromWire(r wire.BalanceStatusResp) BalancerStatus {
	st := BalancerStatus{
		Enabled:     r.Enabled,
		Passes:      r.Passes,
		Migrations:  r.Triggered,
		Cooldown:    time.Duration(r.CooldownMs) * time.Millisecond,
		Last:        rebalanceDecisionFromWire(r.Last),
		DegradedFor: time.Duration(r.DegradedMs) * time.Millisecond,
	}
	if len(r.Rates) > 0 {
		st.Rates = make(map[string]float64, len(r.Rates))
		for _, sr := range r.Rates {
			st.Rates[sr.ID] = float64(sr.MilliOps) / 1000
		}
	}
	for _, m := range r.InFlight {
		st.InFlight = append(st.InFlight, MigrationState{
			ID: m.ID, Epoch: m.Epoch, Source: m.Source, Target: m.Target,
			Range:      HashRange{Start: m.RangeStart, End: m.RangeEnd},
			SourceDone: m.SourceDone, TargetDone: m.TargetDone, Cancelled: m.Cancelled,
		})
	}
	return st
}

// viewFromWire rebuilds a metadata view from a stats response.
func viewFromWire(r wire.StatsResp) View {
	v := View{Number: r.ViewNumber, Ranges: make([]HashRange, len(r.Ranges))}
	for i, rng := range r.Ranges {
		v.Ranges[i] = HashRange{Start: rng.Start, End: rng.End}
	}
	return v
}

// LogStats is a snapshot of a server's HybridLog geometry (§2.2): addresses
// grow monotonically; [BeginAddress, TailAddress) is the live span,
// [BeginAddress, HeadAddress) lives on storage, and DiskResidentBytes is the
// portion a compaction pass could reclaim from.
type LogStats struct {
	BeginAddress        uint64
	HeadAddress         uint64
	FlushedUntilAddress uint64
	TailAddress         uint64
	DiskResidentBytes   uint64
}

// CheckpointInfo describes a committed durable checkpoint.
type CheckpointInfo struct {
	// Version is the sealed CPR version.
	Version uint32
	// LogTail is the log prefix the image covers.
	LogTail uint64
}

// CompactionStats reports one log-compaction pass (§3.3.3).
type CompactionStats struct {
	Scanned   uint64 // records examined in the stable prefix
	Kept      uint64 // live records copied forward to the tail
	Dropped   uint64 // superseded versions, tombstones, indirection records
	Relocated uint64 // disowned records shipped to their current owner

	Begin          uint64 // log begin address after the pass
	ReclaimedBytes uint64 // local device bytes freed
	TierReclaimed  uint64 // shared-tier bytes freed

	// Took is the pass's wall-clock duration; zero when the pass was
	// observed over the wire (the RPC does not carry it).
	Took time.Duration
}

func compactionStatsFromCore(st core.CompactStats) CompactionStats {
	return CompactionStats{
		Scanned:   uint64(st.Scanned),
		Kept:      uint64(st.Kept),
		Dropped:   uint64(st.Dropped),
		Relocated: uint64(st.Relocated),

		Begin:          uint64(st.Begin),
		ReclaimedBytes: st.ReclaimedBytes,
		TierReclaimed:  st.TierReclaimed,

		Took: st.Took,
	}
}

func compactionStatsFromWire(r wire.CompactResp) CompactionStats {
	return CompactionStats{
		Scanned:   r.Scanned,
		Kept:      r.Kept,
		Dropped:   r.Dropped,
		Relocated: r.Relocated,

		Begin:          r.Begin,
		ReclaimedBytes: r.ReclaimedBytes,
		TierReclaimed:  r.TierReclaimed,
	}
}

// DrainResult reports a completed scale-in drain: how many ranges were
// migrated away and whether the server was retired from the metadata store.
type DrainResult struct {
	Moved   int
	Retired bool
}

// ClientStats aggregates a client's counters across its threads.
type ClientStats struct {
	OpsIssued       uint64
	OpsCompleted    uint64
	BatchesSent     uint64
	BatchesRejected uint64
	// BatchesShed counts batches servers turned away under overload; their
	// operations were requeued after a backoff pause.
	BatchesShed uint64
	Refreshes   uint64
}
