package shadowfax

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdminStatsAndCheckpoint(t *testing.T) {
	cluster := NewCluster(WithInProcessNetwork(NetFree))
	logDev := NewMemDevice(LatencyModel{}, 2)
	defer logDev.Close()
	ckptDev := NewMemDevice(LatencyModel{}, 2)
	defer ckptDev.Close()
	srv, err := NewServer(cluster, "s1", WithThreads(1),
		WithLogDevice(logDev), WithCheckpointDevice(ckptDev),
		WithMemoryBudget(12, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		cl.SetAsync(k(i), val(i))
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	admin := NewAdmin(cluster)
	st, err := admin.Stats(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerID != "s1" || st.OpsCompleted < 100 || st.ViewNumber == 0 {
		t.Fatalf("stats over the wire: %+v", st)
	}
	// The wire snapshot and the in-process snapshot agree on identity.
	if local := srv.Stats(); local.ServerID != st.ServerID ||
		local.ViewNumber != st.ViewNumber {
		t.Fatalf("wire stats %+v disagree with local %+v", st, local)
	}

	info, err := admin.Checkpoint(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version == 0 || info.LogTail == 0 {
		t.Fatalf("checkpoint info: %+v", info)
	}
}

func TestAdminCheckpointRejected(t *testing.T) {
	cluster, _ := testCluster(t) // no checkpoint device
	admin := NewAdmin(cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := admin.Checkpoint(ctx, "s1"); !errors.Is(err, ErrRejected) {
		t.Fatalf("checkpoint without device = %v, want ErrRejected", err)
	}
}

func TestAdminCompact(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	// Two overwrite rounds so the stable prefix holds dead versions.
	for round := 0; round < 2; round++ {
		for i := 0; i < 2000; i++ {
			cl.SetAsync(k(i), val(round*10000+i))
		}
		if err := cl.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st, err := NewAdmin(cluster).Compact(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned == 0 {
		t.Fatalf("compaction scanned nothing: %+v", st)
	}
}

func TestAdminMigrate(t *testing.T) {
	cluster := NewCluster(WithInProcessNetwork(NetFree))
	for _, id := range []string{"src", "dst"} {
		ranges := []HashRange{}
		if id == "src" {
			ranges = append(ranges, FullRange)
		}
		srv, err := NewServer(cluster, id, WithThreads(1),
			WithIndexBuckets(1<<10), WithMemoryBudget(12, 16, 8),
			WithOwnership(ranges...), WithSampleDuration(10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		cl.SetAsync(k(i), val(i))
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if err := NewAdmin(cluster).Migrate(ctx, "src", "dst",
		HashRange{Start: 0, End: 1 << 63}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(cluster.PendingMigrations("src")) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("migration never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every key still readable after the ownership change.
	for i := 0; i < 500; i++ {
		v, err := cl.Get(ctx, k(i))
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d after migration: %q, %v", i, v, err)
		}
	}
	if v, err := cluster.View("dst"); err != nil || len(v.Ranges) == 0 {
		t.Fatalf("target view after migration: %+v, %v", v, err)
	}
}

// TestDiscover: a fresh cluster handle adopts an out-of-process-style server
// purely through the Stats handshake.
func TestDiscover(t *testing.T) {
	cluster, _ := testCluster(t)
	cl, err := Dial(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Set(ctx, []byte("shared"), []byte("state")); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	// A second cluster handle shares only the transport — its metadata
	// store starts empty, like a separate process would.
	fresh := NewCluster(WithTransport(cluster.tr))
	st, err := fresh.Discover(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerID != "s1" {
		t.Fatalf("discovered %q", st.ServerID)
	}
	cl2, err := Dial(fresh)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	v, err := cl2.Get(ctx, []byte("shared"))
	if err != nil || !bytes.Equal(v, []byte("state")) {
		t.Fatalf("read through discovered cluster: %q, %v", v, err)
	}
}
