package shadowfax

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// The error taxonomy. Every operation and admin RPC resolves to nil or to an
// error chain containing exactly one of these sentinels, so callers branch
// with errors.Is instead of inspecting wire-level status codes.
var (
	// ErrNotFound: the key does not exist (reads and deletes of absent
	// keys; deletes still succeed — this surfaces only from Get).
	ErrNotFound = errors.New("shadowfax: key not found")
	// ErrNotOwner: no server in the metadata store owns the key's hash
	// range, even after a refresh.
	ErrNotOwner = errors.New("shadowfax: no owner for key's hash range")
	// ErrSessionBroken: a server connection died mid-session; the
	// operations are preserved and RecoverSessions will reconcile them
	// against the (restarted) server's durable state (§3.3.1).
	ErrSessionBroken = errors.New("shadowfax: session broken; RecoverSessions required")
	// ErrClosed: the client was closed; outstanding operations complete
	// with this error and new operations fail with it immediately.
	ErrClosed = errors.New("shadowfax: client closed")
	// ErrRejected: the server refused an admin request (e.g. checkpointing
	// without a checkpoint device, compacting during a migration).
	ErrRejected = errors.New("shadowfax: request rejected by server")
	// ErrInternal: the server reported a failure with no more specific
	// classification.
	ErrInternal = errors.New("shadowfax: internal server error")
)

// errorFromStatus maps a wire-level per-operation status onto the taxonomy.
// StatusOK maps to nil; StatusPending never escapes the server, so seeing it
// here is itself an internal error.
func errorFromStatus(st wire.ResultStatus) error {
	switch st {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusNotOwner:
		return ErrNotOwner
	case wire.StatusClosed:
		return ErrClosed
	case wire.StatusBrokenSession:
		return ErrSessionBroken
	default: // StatusErr, StatusPending, unknown
		return ErrInternal
	}
}

// sessionBrokenError wraps a context error with the broken-session
// diagnosis, satisfying errors.Is for both ErrSessionBroken and the
// underlying context error.
type sessionBrokenError struct {
	sessions int
	cause    error
}

func (e *sessionBrokenError) Error() string {
	return fmt.Sprintf("shadowfax: %d broken session(s); RecoverSessions required (%v)", e.sessions, e.cause)
}

func (e *sessionBrokenError) Is(target error) bool { return target == ErrSessionBroken }

func (e *sessionBrokenError) Unwrap() error { return e.cause }

// rejectionError classifies a server-side admin refusal or failure under
// ErrRejected, keeping the server's detail text.
func rejectionError(err error) error {
	return fmt.Errorf("%w: %v", ErrRejected, err)
}
