package repro_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faster"
)

// TestElasticTCPMultiProcess runs the elastic control plane across real OS
// processes: two shadowfax-server processes over TCP — the first the
// designated metadata endpoint, the second joining it with -meta and owning
// nothing — plus shadowfax-cli invocations as further separate processes.
// After a CLI-triggered split, every participant observes the new ownership
// through the remote metadata provider: `shadowfax-cli stats` (a fresh
// process) prints the post-split cluster view, and a CLI get routes to the
// server that now owns the key.
func TestElasticTCPMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test builds binaries and runs TCP servers")
	}

	bin := t.TempDir()
	server := filepath.Join(bin, "shadowfax-server")
	cli := filepath.Join(bin, "shadowfax-cli")
	for path, pkg := range map[string]string{
		server: "./cmd/shadowfax-server",
		cli:    "./cmd/shadowfax-cli",
	} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	addr1 := freeAddr(t)
	addr2 := freeAddr(t)

	// Server 1: metadata endpoint + balancer host (idle floor keeps the
	// balancer from acting; the test drives the split explicitly so it is
	// deterministic — automatic splitting is covered in-process).
	srv1 := startProc(t, server, "-id", "server-1", "-addr", addr1,
		"-autoscale", "-autoscale-min-rate", "1000000")
	defer srv1.stop()
	waitTCP(t, addr1)

	// Server 2: separate process, joins via the remote metadata provider.
	srv2 := startProc(t, server, "-id", "server-2", "-addr", addr2, "-meta", addr1)
	defer srv2.stop()
	waitTCP(t, addr2)

	runCLI := func(args ...string) (string, error) {
		out, err := exec.Command(cli, args...).CombinedOutput()
		return string(out), err
	}

	// Both processes share the endpoint's views: a fresh CLI process must
	// see server-2 registered (and empty) before any split.
	waitFor(t, 30*time.Second, "server-2 registration", func() (bool, string) {
		out, err := runCLI("-addr", addr1, "-meta", addr1, "stats")
		if err != nil {
			return false, out
		}
		return strings.Contains(out, "server-2") && strings.Contains(out, "(no ranges)"), out
	})

	// A key that hashes into the upper half of the hash space — the range
	// about to move to server-2.
	var upperKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("elastic-key-%d", i)
		if faster.HashOf([]byte(k)) >= 1<<63 {
			upperKey = k
			break
		}
	}
	if out, err := runCLI("-addr", addr1, "-meta", addr1, "set", upperKey, "hello-elastic"); err != nil {
		t.Fatalf("cli set: %v\n%s", err, out)
	}

	// The balancer answers over the new admin RPCs from yet another
	// process (it declines to act: the cluster is idle by configuration).
	if out, err := runCLI("-addr", addr1, "balance-status"); err != nil ||
		!strings.Contains(out, "balancer:") {
		t.Fatalf("cli balance-status: %v\n%s", err, out)
	}
	if out, err := runCLI("-addr", addr1, "rebalance"); err != nil ||
		!strings.Contains(out, "no action") {
		t.Fatalf("cli rebalance: %v\n%s", err, out)
	}

	// Split: migrate the upper half to server-2, triggered from a CLI
	// process.
	if out, err := runCLI("-addr", addr1, "migrate", "server-2",
		"0x8000000000000000", "0xffffffffffffffff"); err != nil {
		t.Fatalf("cli migrate: %v\n%s", err, out)
	}

	// A fresh CLI process reflects the post-split view through the remote
	// metadata provider: server-2 now owns the upper half.
	waitFor(t, 60*time.Second, "post-split view in cli stats", func() (bool, string) {
		out, err := runCLI("-addr", addr2, "-meta", addr1, "stats")
		if err != nil {
			return false, out
		}
		return strings.Contains(out, "[0x8000000000000000,0xffffffffffffffff)") &&
			!strings.Contains(out, "(no ranges)"), out
	})

	// Data-plane routing over the shared views: the key now lives on
	// server-2, and a CLI get (routed via -meta) still finds it.
	waitFor(t, 60*time.Second, "get after migration", func() (bool, string) {
		out, err := runCLI("-addr", addr1, "-meta", addr1, "get", upperKey)
		if err != nil {
			return false, out
		}
		return strings.Contains(out, "hello-elastic"), out
	})
}

// freeAddr reserves a TCP port and releases it for the server to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type proc struct {
	t   *testing.T
	cmd *exec.Cmd
	out *strings.Builder
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, cmd: exec.Command(bin, args...), out: &strings.Builder{}}
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

func (p *proc) stop() {
	p.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
	if p.t.Failed() {
		p.t.Logf("process %v output:\n%s", p.cmd.Args, p.out.String())
	}
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

// waitFor polls check until it reports success or the deadline passes; the
// last observed output is reported on failure.
func waitFor(t *testing.T, timeout time.Duration, what string, check func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		ok, out := check()
		if ok {
			return
		}
		last = out
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last output:\n%s", what, last)
}
