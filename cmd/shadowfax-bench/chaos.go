package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/soak"
)

// The chaos experiment drives the partition soak (internal/soak): a
// replicated pair plus a metadata host behind a deterministic fault-
// injection network, scripted through a primary⇹standby partition (no
// promotion allowed; overload shed instead of unbounded queueing), a
// metadata partition (degraded cached views), and a primary kill (exactly
// one promotion, then balancer-driven re-replication). The headline metrics
// are the self-healing latencies: time-to-heal after the partition,
// time-to-promote and time-to-re-replicate after the kill, plus the shed
// rate the overload control imposed. Like the cluster scenario it doubles
// as a correctness gate — any linearizability violation fails the run.
func runChaos(threadsPer int, seed int64, verbose bool) error {
	cfg := soak.PartitionConfig{Threads: threadsPer, Seed: seed}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
		}
	}
	res, err := soak.RunPartition(cfg)
	if err != nil {
		return fmt.Errorf("chaos soak: %w", err)
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "violation: %s\n", v)
		}
		return fmt.Errorf("chaos soak: %d correctness violations (first: %s)",
			len(res.Violations), res.Violations[0])
	}
	fmt.Println("# Chaos: partition/heal/failover timeline under fault-injected transport")
	fmt.Printf("%-26s %v\n", "time-to-heal", res.TimeToHeal.Round(time.Millisecond))
	fmt.Printf("%-26s %v\n", "metadata-degraded-seen", res.DegradedObserved.Round(time.Millisecond))
	fmt.Printf("%-26s %v\n", "time-to-promote", res.PromotedIn.Round(time.Millisecond))
	fmt.Printf("%-26s %v\n", "time-to-re-replicate", res.TimeToReReplicate.Round(time.Millisecond))
	fmt.Printf("%-26s %d (%.2f%% of batches)\n", "batches-shed", res.BatchesShed, res.ShedRate*100)
	fmt.Printf("%-26s %.3f Mops/s over %v\n", "aggregate-throughput",
		res.AggregateMops, res.Duration.Round(time.Millisecond))
	emitBenchJSON("chaos", []BenchMetric{
		{Name: "time_to_heal_seconds", Value: res.TimeToHeal.Seconds(), Unit: "s"},
		{Name: "time_to_promote_seconds", Value: res.PromotedIn.Seconds(), Unit: "s"},
		{Name: "time_to_rereplicate_seconds", Value: res.TimeToReReplicate.Seconds(), Unit: "s"},
		{Name: "metadata_degraded_seconds", Value: res.DegradedObserved.Seconds(), Unit: "s"},
		{Name: "shed_rate", Value: res.ShedRate, Unit: "fraction"},
		{Name: "aggregate_mops", Value: res.AggregateMops, Unit: "Mops/s"},
	})
	return nil
}
