package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// Machine-readable benchmark output: with -json-dir every experiment also
// writes BENCH_<experiment>.json, one file per experiment, so CI can archive
// the perf trajectory next to the human-readable tables.

// benchJSONDir is the -json-dir flag value ("" = no JSON output).
var benchJSONDir string

// BenchMetric is one measured series point.
type BenchMetric struct {
	// Name identifies the point within the experiment, e.g.
	// "shadowfax_mops/threads=4".
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// NsPerOp is the per-operation cost where the metric is a throughput
	// (0 otherwise).
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp / BytesPerOp record per-operation heap allocation
	// behavior where the experiment measures it (the hotpath experiment),
	// so the CI artifact trajectory catches allocation regressions, not
	// just throughput ones. Pointers so a measured 0.0 still appears in
	// the JSON (reaching zero is the goal, not "not measured").
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

// BenchReport is the BENCH_<experiment>.json document.
type BenchReport struct {
	Benchmark  string        `json:"benchmark"` // "shadowfax-bench/<experiment>"
	Experiment string        `json:"experiment"`
	GitSHA     string        `json:"git_sha"`
	Timestamp  string        `json:"timestamp"` // RFC 3339 UTC
	Metrics    []BenchMetric `json:"metrics"`
}

// mopsMetric builds a throughput metric with its derived ns/op.
func mopsMetric(name string, mops float64) BenchMetric {
	m := BenchMetric{Name: name, Value: mops, Unit: "Mops/s"}
	if mops > 0 {
		m.NsPerOp = 1000 / mops // 1e9 ns/s ÷ (mops × 1e6 op/s)
	}
	return m
}

// gitSHA best-efforts the current commit: CI exports GITHUB_SHA; local runs
// ask git; failing both, the field is "unknown".
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// emitBenchJSON writes BENCH_<experiment>.json when -json-dir is set.
// Failures are reported but never fail the experiment: the tables already
// printed are the primary output.
func emitBenchJSON(experiment string, metrics []BenchMetric) {
	if benchJSONDir == "" || len(metrics) == 0 {
		return
	}
	rep := BenchReport{
		Benchmark:  "shadowfax-bench/" + experiment,
		Experiment: experiment,
		GitSHA:     gitSHA(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Metrics:    metrics,
	}
	if err := os.MkdirAll(benchJSONDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
		return
	}
	path := filepath.Join(benchJSONDir, "BENCH_"+experiment+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
