// Command shadowfax-bench regenerates the paper's tables and figures
// (§4) against the scaled simulation. Each sub-command prints the same
// rows/series the paper reports; see EXPERIMENTS.md for the mapping.
//
// Usage:
//
//	shadowfax-bench <experiment> [flags]
//
// Experiments: table1, hotpath, fig8, fig9, table2, coldread, autoscale,
// failover, fig10, fig11, fig12, fig13, fig14, fig15, cluster, chaos, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/soak"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	exp := os.Args[1]
	fs := flag.NewFlagSet(exp, flag.ExitOnError)
	keys := fs.Uint64("keys", 100_000, "dataset size (paper: 250M, scaled)")
	valueBytes := fs.Int("value-bytes", 64, "value size (paper: 256)")
	duration := fs.Duration("duration", 2*time.Second, "measurement window per point")
	threadsFlag := fs.String("threads", "1,2,4", "comma-separated thread counts")
	serverThreads := fs.Int("server-threads", 2, "dispatcher threads (timeline/table experiments)")
	warmup := fs.Duration("warmup", 3*time.Second, "run time before Migrate()")
	runtime := fs.Duration("runtime", 12*time.Second, "total timeline runtime")
	sample := fs.Duration("sample", 250*time.Millisecond, "timeline sampling interval")
	fraction := fs.Float64("fraction", 0.10, "hash-space fraction to migrate")
	memPages := fs.Int("mem-pages", 256, "in-memory page frames per server")
	budgetPages := fs.Int("budget-pages", 0, "constrained memory budget for spill modes (0=mem-pages/4)")
	mode := fs.String("mode", "", "fig10/11/12 mode: mem | indirection | rocksteady (default: all)")
	splitsFlag := fs.String("splits", "1,2,4,8,16,32,64,256,2048", "fig15 hash split counts")
	serversFlag := fs.String("servers", "4,8", "cluster experiment server counts (soak minimum 4)")
	seed := fs.Int64("seed", 42, "cluster experiment soak seed (fixed fault/load schedule)")
	ssdLat := fs.Duration("ssd-latency", 0, "local SSD read latency for spill modes (0=100µs)")
	shiftAt := fs.Duration("shift-at", 0,
		"autoscale experiment: jump the hot key set at this offset (0 = no shift)")
	killAt := fs.Duration("kill-at", 0,
		"failover experiment: kill the primary at this offset (0 = runtime/3)")
	quiet := fs.Bool("q", false, "suppress progress output")
	jsonDir := fs.String("json-dir", "",
		"also write machine-readable BENCH_<experiment>.json files into this directory")
	fs.Parse(os.Args[2:])
	benchJSONDir = *jsonDir

	o := bench.Options{
		Keys: *keys, ValueBytes: *valueBytes, Duration: *duration,
		MemPages: *memPages,
	}
	if !*quiet {
		o.Verbose = os.Stderr
	}
	so := bench.ScaleOutOptions{
		Options:             o,
		MigrateFraction:     *fraction,
		WarmupBeforeMigrate: *warmup,
		TotalRuntime:        *runtime,
		SampleEvery:         *sample,
		ServerThreads:       *serverThreads,
		DriveThreads:        *serverThreads,
		MemPagesOverride:    *budgetPages,
		SSDReadLatency:      *ssdLat,
	}

	var err error
	switch exp {
	case "table1":
		printTable1()
	case "hotpath":
		err = runHotPath(o)
	case "fig8":
		err = runFig8(parseInts(*threadsFlag), o)
	case "fig9":
		err = runFig9(parseInts(*threadsFlag), o)
	case "table2":
		err = runTable2(*serverThreads, o)
	case "coldread":
		err = runColdRead(bench.ColdReadOptions{
			Options: o, Threads: *serverThreads, SSDReadLatency: *ssdLat,
		})
	case "fig10", "fig11", "fig12":
		err = runTimeline(exp, *mode, so)
	case "autoscale":
		err = runAutoScale(bench.AutoScaleOptions{
			Options:      o,
			TotalRuntime: *runtime, SampleEvery: *sample,
			ShiftAt:       *shiftAt,
			ServerThreads: *serverThreads, DriveThreads: *serverThreads,
		})
	case "failover":
		err = runFailover(failoverOptions{
			Keys: *keys, ServerThreads: *serverThreads, DriveThreads: *serverThreads,
			TotalRuntime: *runtime, SampleEvery: *sample, KillAt: *killAt,
			Seed: *seed, Verbose: o.Verbose,
		})
	case "fig13":
		err = runFig13(so)
	case "fig14":
		err = runFig14(so)
	case "fig15":
		err = runFig15(parseInts(*splitsFlag), *serverThreads, o)
	case "cluster":
		err = runCluster(parseInts(*serversFlag), *serverThreads, *duration, *seed, !*quiet)
	case "chaos":
		err = runChaos(*serverThreads, *seed, !*quiet)
	case "all":
		err = runAll(parseInts(*threadsFlag), parseInts(*splitsFlag),
			parseInts(*serversFlag), *serverThreads, *duration, *seed, !*quiet, o, so)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: shadowfax-bench <experiment> [flags]

experiments:
  table1    print the simulated environment model (paper Table 1)
  hotpath   dispatch hot-path microbenchmark: ns/op + allocs/op per mix
  fig8      thread scalability: FASTER vs Shadowfax vs w/o accel
  fig9      Shadowfax vs Seastar (uniform keys)
  table2    throughput/batch/latency/queue depth per network stack
  coldread  cold-read pipeline + read cache: Mops at 10/25/50% memory budgets
  autoscale balancer-driven scale-out under a (shifting) hotspot — no manual Migrate()
  failover  kill a replicated primary mid-run: time-to-promote + throughput dip/recovery
  fig10     system throughput during scale-out (-mode=mem|indirection|rocksteady)
  fig11     per-server throughput during scale-out
  fig12     pending-set size during scale-out
  fig13     bytes migrated from memory per mode
  fig14     target ramp-up with/without sampled records
  fig15     view validation vs hash validation vs hash splits
  cluster   soak-driven: aggregate throughput + migration concurrency vs server count
  chaos     fault-injected partition soak: time-to-heal, promotion, re-replication, shed rate
  all       run everything with the current flags`)
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func printTable1() {
	fmt.Println("# Table 1: simulated environment (paper: Azure E64_v3)")
	fmt.Println("component      paper                         this reproduction")
	fmt.Println("CPU            Xeon E5-2673 v4, 64 vCPUs     goroutine-per-vCPU dispatchers (configurable)")
	fmt.Println("RAM            432 GB                        configurable page-frame budget (MemPages<<PageBits)")
	fmt.Println("SSD            96k IOPS, 500 MB/s            storage.MemDevice with latency/IOPS model")
	fmt.Println("Network        30 Gbps, HW accelerated       transport.CostModel (per-frame + per-byte CPU burn)")
	fmt.Println("Remote tier    Azure premium page blobs      storage.SharedTier (2ms, 7500 IOPS, 250 MB/s)")
	fmt.Println("OS             Ubuntu 18.04                  host Go runtime")
}

// runHotPath measures the normal-operation dispatch path per mix: ns, heap
// allocations and heap bytes per KV operation (everything served from
// memory; see internal/bench/hotpath.go). The RMW mix uses 8-byte values so
// the store's in-place counter path applies.
func runHotPath(o bench.Options) error {
	fmt.Println("# Hot path: per-op dispatch cost, all ops served from memory (paper Fig. 5 baseline)")
	fmt.Printf("%-18s %-10s %-10s %-12s %-12s\n",
		"mix", "Mops/s", "ns/op", "allocs/op", "bytes/op")
	cases := []struct {
		mix        bench.HotPathMix
		valueBytes int
	}{
		{bench.HotPathMixed, o.ValueBytes},
		{bench.HotPathRead, o.ValueBytes},
		{bench.HotPathUpsert, o.ValueBytes},
		{bench.HotPathRMW, 8},
	}
	var metrics []BenchMetric
	for _, c := range cases {
		ho := o
		ho.ValueBytes = c.valueBytes
		h, err := bench.NewHotPathHarness(ho)
		if err != nil {
			return err
		}
		mix := c.mix
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := h.RunBatch(mix); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		h.Close()
		// b.Fatal aborts the benchmark goroutine and testing.Benchmark
		// returns a zero result; surface that as a failure instead of
		// writing 0.0 metrics into the perf trajectory.
		if benchErr != nil {
			return fmt.Errorf("hotpath %s: %w", mix.Name, benchErr)
		}
		if r.N == 0 {
			return fmt.Errorf("hotpath %s: benchmark produced no iterations", mix.Name)
		}
		ops := float64(h.BatchOps())
		nsPerOp := float64(r.NsPerOp()) / ops
		allocsPerOp := float64(r.AllocsPerOp()) / ops
		bytesPerOp := float64(r.AllocedBytesPerOp()) / ops
		mops := 0.0
		if nsPerOp > 0 {
			mops = 1000 / nsPerOp
		}
		fmt.Printf("%-18s %-10.3f %-10.1f %-12.3f %-12.1f\n",
			mix.Name, mops, nsPerOp, allocsPerOp, bytesPerOp)
		metrics = append(metrics, BenchMetric{
			Name:  fmt.Sprintf("hotpath_mops/mix=%s", mix.Name),
			Value: mops, Unit: "Mops/s", NsPerOp: nsPerOp,
			AllocsPerOp: &allocsPerOp, BytesPerOp: &bytesPerOp,
		})
	}
	emitBenchJSON("hotpath", metrics)
	return nil
}

func runFig8(threads []int, o bench.Options) error {
	rows, err := bench.Fig8(threads, o)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 8: YCSB-F, Zipfian(0.99), throughput vs threads (Mops/s)")
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "threads", "faster", "shadowfax", "w/o-accel")
	var metrics []BenchMetric
	for _, r := range rows {
		fmt.Printf("%-8d %-12.3f %-12.3f %-12.3f\n",
			r.Threads, r.FasterMops, r.ShadowfaxMops, r.NoAccelMops)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("faster_mops/threads=%d", r.Threads), r.FasterMops),
			mopsMetric(fmt.Sprintf("shadowfax_mops/threads=%d", r.Threads), r.ShadowfaxMops),
			mopsMetric(fmt.Sprintf("noaccel_mops/threads=%d", r.Threads), r.NoAccelMops))
	}
	emitBenchJSON("fig8", metrics)
	return nil
}

func runFig9(threads []int, o bench.Options) error {
	rows, err := bench.Fig9(threads, o)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 9: YCSB-F, uniform, throughput vs threads (Mops/s)")
	fmt.Printf("%-8s %-12s %-12s %-8s\n", "threads", "shadowfax", "seastar", "ratio")
	var metrics []BenchMetric
	for _, r := range rows {
		ratio := 0.0
		if r.SeastarMops > 0 {
			ratio = r.ShadowfaxMops / r.SeastarMops
		}
		fmt.Printf("%-8d %-12.3f %-12.3f %-8.1fx\n",
			r.Threads, r.ShadowfaxMops, r.SeastarMops, ratio)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("shadowfax_mops/threads=%d", r.Threads), r.ShadowfaxMops),
			mopsMetric(fmt.Sprintf("seastar_mops/threads=%d", r.Threads), r.SeastarMops))
	}
	emitBenchJSON("fig9", metrics)
	return nil
}

func runTable2(threads int, o bench.Options) error {
	rows, err := bench.Table2(threads, o)
	if err != nil {
		return err
	}
	fmt.Println("# Table 2: saturation throughput / batch size / median latency / queue depth")
	fmt.Printf("%-12s %-14s %-12s %-14s %-10s\n",
		"network", "Mops/s", "batch(B)", "median-lat", "queue")
	var metrics []BenchMetric
	for _, r := range rows {
		fmt.Printf("%-12s %-14.3f %-12d %-14v %-10.0f\n",
			r.Network, r.ThroughputMops, r.BatchBytes, r.MedianLatency,
			r.MeanQueueDepth)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("throughput_mops/network=%s", r.Network), r.ThroughputMops),
			BenchMetric{Name: fmt.Sprintf("median_latency_us/network=%s", r.Network),
				Value: float64(r.MedianLatency.Microseconds()), Unit: "us"})
	}
	emitBenchJSON("table2", metrics)
	return nil
}

// runColdRead sweeps memory budgets for the read-only Zipfian cold-read
// workload, reporting the pending-read pipeline with the second-chance read
// cache off and on (see README "Cold reads").
func runColdRead(co bench.ColdReadOptions) error {
	rows, err := bench.ColdRead(co)
	if err != nil {
		return err
	}
	fmt.Println("# Cold reads: YCSB-C Zipfian, dataset larger than memory (Mops/s)")
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s %-10s %-11s %-10s\n",
		"budget", "pages", "cache-off", "cache-on", "hit-rate", "copies",
		"coalesced", "batches")
	var metrics []BenchMetric
	for _, r := range rows {
		fmt.Printf("%-10s %-10d %-12.3f %-12.3f %-10.3f %-10d %-11d %-10d\n",
			fmt.Sprintf("%d%%", r.BudgetPct), r.MemPages,
			r.CacheOffMops, r.CacheOnMops, r.HitRate, r.Copies,
			r.Coalesced, r.BatchReads)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("cacheoff_mops/budget=%d", r.BudgetPct), r.CacheOffMops),
			mopsMetric(fmt.Sprintf("cacheon_mops/budget=%d", r.BudgetPct), r.CacheOnMops),
			BenchMetric{Name: fmt.Sprintf("cache_hit_rate/budget=%d", r.BudgetPct),
				Value: r.HitRate, Unit: "ratio"})
	}
	emitBenchJSON("coldread", metrics)
	return nil
}

func parseMode(mode string) (bench.ScaleOutMode, bool) {
	switch mode {
	case "mem", "memory":
		return bench.ModeAllInMemory, true
	case "indirection":
		return bench.ModeIndirection, true
	case "rocksteady":
		return bench.ModeRocksteady, true
	}
	return 0, false
}

func runTimeline(which, mode string, so bench.ScaleOutOptions) error {
	modes := []bench.ScaleOutMode{bench.ModeAllInMemory,
		bench.ModeIndirection, bench.ModeRocksteady}
	if m, ok := parseMode(mode); ok {
		modes = []bench.ScaleOutMode{m}
	}
	var metrics []BenchMetric
	for _, m := range modes {
		run := so
		run.Mode = m
		res, err := bench.ScaleOut(run)
		if err != nil {
			return err
		}
		took := res.Report.Finished.Sub(res.Report.Started)
		fmt.Printf("# %s (%s): migration at %v, recovered in %v, took %v\n",
			strings.ToUpper(which), m, res.MigrationAt.Round(time.Millisecond),
			res.ThroughputRecoveredIn.Round(time.Millisecond),
			took.Round(time.Millisecond))
		switch which {
		case "fig10":
			fmt.Printf("%-10s %-12s\n", "t(s)", "system-Mops")
			for _, s := range res.Samples {
				fmt.Printf("%-10.2f %-12.4f\n", s.At.Seconds(), s.SystemMops)
			}
		case "fig11":
			fmt.Printf("%-10s %-12s %-12s\n", "t(s)", "source-Mops", "target-Mops")
			for _, s := range res.Samples {
				fmt.Printf("%-10.2f %-12.4f %-12.4f\n",
					s.At.Seconds(), s.SourceMops, s.TargetMops)
			}
		case "fig12":
			fmt.Printf("%-10s %-12s\n", "t(s)", "pending")
			for _, s := range res.Samples {
				fmt.Printf("%-10.2f %-12d\n", s.At.Seconds(), s.PendingOps)
			}
		}
		fmt.Println()
		metrics = append(metrics, timelineMetrics(m, res)...)
	}
	emitBenchJSON(which, metrics)
	return nil
}

// timelineMetrics flattens one scale-out run into trajectory metrics: the
// system-throughput timeline around the migration (the paper's scale-out
// figure), plus the end-to-end migration duration and the time until
// throughput regained 90% of its pre-migration mean.
func timelineMetrics(m bench.ScaleOutMode, res *bench.ScaleOutResult) []BenchMetric {
	tag := strings.ReplaceAll(strings.ToLower(m.String()), " ", "_")
	out := []BenchMetric{
		{Name: fmt.Sprintf("migration_seconds/mode=%s", tag),
			Value: res.Report.Finished.Sub(res.Report.Started).Seconds(), Unit: "s"},
		{Name: fmt.Sprintf("recovered_in_seconds/mode=%s", tag),
			Value: res.ThroughputRecoveredIn.Seconds(), Unit: "s"},
	}
	for _, s := range res.Samples {
		out = append(out, BenchMetric{
			Name:  fmt.Sprintf("system_mops_timeline/mode=%s/t=%06.2f", tag, s.At.Seconds()),
			Value: s.SystemMops, Unit: "Mops/s",
		})
	}
	return out
}

// runAutoScale prints the hotspot-shift timeline: per-server throughput and
// the balancer's cumulative migrations, with every split balancer-triggered.
func runAutoScale(ao bench.AutoScaleOptions) error {
	res, err := bench.AutoScaleOut(ao)
	if err != nil {
		return err
	}
	fmt.Printf("# Auto-scale-out: balancer-driven splits (first at %v, %d total",
		res.FirstSplitAt.Round(time.Millisecond), res.MigrationsTriggered)
	if res.ShiftAt > 0 {
		fmt.Printf("; hotspot shifted at %v", res.ShiftAt.Round(time.Millisecond))
	}
	fmt.Println(")")
	fmt.Printf("%-10s %-12s %-12s %-12s %-11s\n",
		"t(s)", "system-Mops", "source-Mops", "target-Mops", "migrations")
	var metrics []BenchMetric
	for _, s := range res.Samples {
		fmt.Printf("%-10.2f %-12.4f %-12.4f %-12.4f %-11d\n",
			s.At.Seconds(), s.SystemMops, s.SourceMops, s.TargetMops, s.Migrations)
		metrics = append(metrics, BenchMetric{
			Name:  fmt.Sprintf("system_mops_timeline/t=%06.2f", s.At.Seconds()),
			Value: s.SystemMops, Unit: "Mops/s",
		})
	}
	metrics = append(metrics,
		BenchMetric{Name: "first_split_seconds", Value: res.FirstSplitAt.Seconds(), Unit: "s"},
		BenchMetric{Name: "balancer_migrations", Value: float64(res.MigrationsTriggered), Unit: "count"})
	emitBenchJSON("autoscale", metrics)
	return nil
}

func runFig13(so bench.ScaleOutOptions) error {
	rows, err := bench.Fig13(so)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 13: data migrated from main memory")
	fmt.Printf("%-24s %-16s %-12s\n", "mode", "bytes-from-mem", "took")
	var metrics []BenchMetric
	for _, r := range rows {
		fmt.Printf("%-24s %-16d %-12v\n", r.Mode, r.MigratedFromMemoryBytes,
			r.MigrationTook.Round(time.Millisecond))
		metrics = append(metrics,
			BenchMetric{Name: fmt.Sprintf("bytes_from_memory/mode=%v", r.Mode),
				Value: float64(r.MigratedFromMemoryBytes), Unit: "bytes"},
			BenchMetric{Name: fmt.Sprintf("migration_seconds/mode=%v", r.Mode),
				Value: r.MigrationTook.Seconds(), Unit: "s"})
	}
	emitBenchJSON("fig13", metrics)
	return nil
}

func runFig14(so bench.ScaleOutOptions) error {
	res, err := bench.Fig14(so)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 14: target throughput after ownership transfer")
	fmt.Printf("%-10s %-14s %-14s\n", "t(s)", "sampling", "no-sampling")
	n := len(res.WithSampling.Samples)
	if len(res.WithoutSampling.Samples) < n {
		n = len(res.WithoutSampling.Samples)
	}
	for i := 0; i < n; i++ {
		a := res.WithSampling.Samples[i]
		b := res.WithoutSampling.Samples[i]
		fmt.Printf("%-10.2f %-14.4f %-14.4f\n", a.At.Seconds(), a.TargetMops, b.TargetMops)
	}
	fmt.Printf("# sampled records shipped: %d (with) vs %d (without)\n",
		res.WithSampling.Report.SampledRecords,
		res.WithoutSampling.Report.SampledRecords)
	return nil
}

func runFig15(splits []int, threads int, o bench.Options) error {
	rows, err := bench.Fig15(splits, threads, o)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 15: ownership validation overhead vs hash splits")
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "splits", "view-Mops", "hash-Mops", "view-gain")
	var metrics []BenchMetric
	for _, r := range rows {
		fmt.Printf("%-8d %-12.3f %-12.3f %+.1f%%\n",
			r.Splits, r.ViewMops, r.HashMops, r.ImprovementPct)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("view_mops/splits=%d", r.Splits), r.ViewMops),
			mopsMetric(fmt.Sprintf("hash_mops/splits=%d", r.Splits), r.HashMops))
	}
	emitBenchJSON("fig15", metrics)
	return nil
}

// runCluster drives the soak harness (internal/soak) once per server count:
// an N-server in-process cluster under skewed shifting load with balancer-
// driven and forced concurrent disjoint-range migrations, continuously
// checked for per-key linearizability. It reports aggregate throughput and
// the peak migration concurrency the metadata store observed, and fails the
// whole run if the soak records a single violation — the benchmark doubles
// as a correctness gate.
func runCluster(servers []int, threadsPer int, d time.Duration, seed int64, verbose bool) error {
	fmt.Println("# Cluster soak (§4: aggregate throughput vs servers, under concurrent disjoint-range migrations)")
	fmt.Printf("%-10s %-12s %-14s %-12s\n", "servers", "Mops/s", "max-conc-mig", "migrations")
	var metrics []BenchMetric
	for _, n := range servers {
		cfg := soak.Config{
			Servers: n, Threads: threadsPer, Duration: d, Seed: seed,
			// Kill/restart cycles measure recovery, not scaling; keep the
			// bench load steady. The rest of the fault schedule (forced
			// concurrent pairs, cancels, overlap attempts) stays on so the
			// concurrency metrics mean something.
			Kills: -1,
		}
		if verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "cluster: "+format+"\n", args...)
			}
		}
		res, err := soak.Run(cfg)
		if err != nil {
			return fmt.Errorf("cluster soak servers=%d: %w", n, err)
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("cluster soak servers=%d: %d linearizability violations (first: %s)",
				res.Servers, len(res.Violations), res.Violations[0])
		}
		fmt.Printf("%-10d %-12.3f %-14d %-12d\n",
			res.Servers, res.AggregateMops, res.MaxConcurrentMigrations, res.MigrationsSeen)
		metrics = append(metrics,
			mopsMetric(fmt.Sprintf("aggregate_mops/servers=%d", res.Servers), res.AggregateMops),
			BenchMetric{Name: fmt.Sprintf("max_concurrent_migrations/servers=%d", res.Servers),
				Value: float64(res.MaxConcurrentMigrations), Unit: "count"},
			BenchMetric{Name: fmt.Sprintf("migrations_seen/servers=%d", res.Servers),
				Value: float64(res.MigrationsSeen), Unit: "count"})
	}
	emitBenchJSON("cluster", metrics)
	return nil
}

func runAll(threads, splits, servers []int, serverThreads int,
	duration time.Duration, seed int64, verbose bool,
	o bench.Options, so bench.ScaleOutOptions) error {
	printTable1()
	fmt.Println()
	steps := []func() error{
		func() error { return runFig8(threads, o) },
		func() error { return runFig9(threads, o) },
		func() error { return runTable2(serverThreads, o) },
		func() error {
			return runColdRead(bench.ColdReadOptions{Options: o, Threads: serverThreads})
		},
		func() error { return runTimeline("fig10", "", so) },
		func() error { return runTimeline("fig11", "", so) },
		func() error { return runTimeline("fig12", "", so) },
		func() error { return runFig13(so) },
		func() error { return runFig14(so) },
		func() error { return runFig15(splits, serverThreads, o) },
		func() error { return runCluster(servers, serverThreads, duration, seed, verbose) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
