package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/shadowfax"
)

// The failover experiment: a primary with a hot standby under steady RMW
// load is killed mid-run. The timeline captures the throughput dip and
// recovery; the headline metrics are the time from kill to promotion (the
// standby's failure detector + the metadata linearization point) and the
// time until the clients' replayed sessions regain the pre-kill throughput.

type failoverOptions struct {
	Keys          uint64
	ServerThreads int
	DriveThreads  int
	TotalRuntime  time.Duration
	SampleEvery   time.Duration
	KillAt        time.Duration
	Seed          int64
	Verbose       io.Writer
}

type failoverSample struct {
	At   time.Duration
	Mops float64
}

func runFailover(fo failoverOptions) error {
	if fo.KillAt <= 0 {
		fo.KillAt = fo.TotalRuntime / 3
	}
	logf := func(format string, args ...any) {
		if fo.Verbose != nil {
			fmt.Fprintf(fo.Verbose, "failover: "+format+"\n", args...)
		}
	}

	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer cluster.Close()
	primary, err := shadowfax.NewServer(cluster, "primary",
		shadowfax.WithThreads(fo.ServerThreads))
	if err != nil {
		return err
	}
	defer primary.Close()
	standby, err := shadowfax.NewServer(cluster, "primary-b",
		shadowfax.WithThreads(fo.ServerThreads),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      "primary",
			HeartbeatEvery: 10 * time.Millisecond,
			FailoverAfter:  100 * time.Millisecond,
			AckTimeout:     2 * time.Second,
		}))
	if err != nil {
		return err
	}
	defer standby.Close()

	ctx, cancel := context.WithTimeout(context.Background(),
		fo.TotalRuntime+2*time.Minute)
	defer cancel()

	syncDeadline := time.Now().Add(time.Minute)
	for {
		if r, ok := cluster.Replicas()["primary"]; ok && r.Synced {
			break
		}
		if time.Now().After(syncDeadline) {
			return fmt.Errorf("standby never finished its base sync")
		}
		time.Sleep(5 * time.Millisecond)
	}
	logf("standby synced; driving load (kill at %v)", fo.KillAt)

	var (
		ops   atomic.Uint64
		stop  atomic.Bool
		recMu sync.Mutex
	)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < fo.DriveThreads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := shadowfax.Dial(cluster)
			if err != nil {
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(fo.Seed + int64(w)))
			delta := make([]byte, 8)
			binary.LittleEndian.PutUint64(delta, 1)
			for !stop.Load() {
				key := []byte(fmt.Sprintf("fo-%07d", rng.Int63n(int64(fo.Keys))))
				// Per-op deadline: an op parked on a session the kill broke
				// would otherwise wait out the whole run (broken-session ops
				// are preserved for session recovery, not failed).
				opCtx, cancelOp := context.WithTimeout(ctx, time.Second)
				err := cl.RMW(opCtx, key, delta)
				cancelOp()
				if err != nil {
					if stop.Load() || ctx.Err() != nil {
						return
					}
					// The primary died under us: replay the sessions against
					// whichever server the metadata store now points at.
					// One worker recovers at a time; the others' recoveries
					// become instant no-ops once the sessions are whole.
					recMu.Lock()
					for !stop.Load() && cl.RecoverSessions(ctx) != nil {
						time.Sleep(2 * time.Millisecond)
					}
					recMu.Unlock()
					continue
				}
				ops.Add(1)
			}
		}(w)
	}

	// Sampler.
	var samples []failoverSample
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(fo.SampleEvery)
		defer t.Stop()
		last := uint64(0)
		for range t.C {
			if stop.Load() {
				return
			}
			cur := ops.Load()
			samples = append(samples, failoverSample{
				At:   time.Since(start),
				Mops: float64(cur-last) / fo.SampleEvery.Seconds() / 1e6,
			})
			last = cur
		}
	}()

	// The fault: kill the primary abruptly at the configured offset, then
	// watch for the standby's self-promotion.
	time.Sleep(time.Until(start.Add(fo.KillAt)))
	killAt := time.Since(start)
	logf("killing primary at %v", killAt.Round(time.Millisecond))
	primary.Close()
	promoteDeadline := time.Now().Add(time.Minute)
	for standby.IsStandby() {
		if time.Now().After(promoteDeadline) {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("standby never promoted itself after the kill")
		}
		time.Sleep(time.Millisecond)
	}
	timeToPromote := time.Since(start) - killAt
	logf("standby promoted %v after the kill", timeToPromote.Round(time.Millisecond))

	time.Sleep(time.Until(start.Add(fo.TotalRuntime)))
	stop.Store(true)
	wg.Wait()
	<-samplerDone

	// Pre-kill throughput baseline: samples fully inside the pre-kill
	// window, minus the first (ramp-up).
	var preSum float64
	preN := 0
	for _, s := range samples {
		if s.At < killAt && s.At > fo.SampleEvery {
			preSum += s.Mops
			preN++
		}
	}
	preMean := 0.0
	if preN > 0 {
		preMean = preSum / float64(preN)
	}
	recoveredIn := time.Duration(-1)
	for _, s := range samples {
		if s.At > killAt && s.Mops >= 0.9*preMean {
			recoveredIn = s.At - killAt
			break
		}
	}

	fmt.Printf("# Failover: primary killed at %v; promoted in %v; throughput recovered in %v (pre-kill %.4f Mops/s)\n",
		killAt.Round(time.Millisecond), timeToPromote.Round(time.Millisecond),
		recoveredIn.Round(time.Millisecond), preMean)
	fmt.Printf("%-10s %-12s\n", "t(s)", "system-Mops")
	metrics := []BenchMetric{
		{Name: "time_to_promote_seconds", Value: timeToPromote.Seconds(), Unit: "s"},
		{Name: "throughput_recovered_seconds", Value: recoveredIn.Seconds(), Unit: "s"},
		{Name: "pre_kill_mops", Value: preMean, Unit: "Mops/s"},
	}
	for _, s := range samples {
		fmt.Printf("%-10.2f %-12.4f\n", s.At.Seconds(), s.Mops)
		metrics = append(metrics, BenchMetric{
			Name:  fmt.Sprintf("system_mops_timeline/t=%06.2f", s.At.Seconds()),
			Value: s.Mops, Unit: "Mops/s",
		})
	}
	if recoveredIn < 0 {
		return fmt.Errorf("throughput never recovered to 90%% of the pre-kill mean (%.4f Mops/s)", preMean)
	}
	emitBenchJSON("failover", metrics)
	return nil
}
