// Command shadowfax-server runs a single Shadowfax server over real TCP,
// built entirely on the public repro/shadowfax package.
//
// For multi-server deployments every server needs the same metadata store;
// this binary embeds an in-process one, so it is intended for single-node
// use and for driving the store with cmd/shadowfax-cli (which bootstraps via
// the Discover handshake). Multi-server clusters live in examples/cluster
// and examples/scaleout (single process, shared metadata), matching the
// simulation substitutions in DESIGN.md §2.
//
// Durability: with -data the server keeps its HybridLog in <dir>/hlog.dat
// and checkpoint images in <dir>/checkpoints.dat. Checkpoints are taken
// periodically (-checkpoint-every) and on demand (`shadowfax-cli
// checkpoint`). After a crash, restart with -recover-from <dir> to rebuild
// the store from the latest committed image: every key durable at the
// checkpoint is served again and client sessions resume past their
// recovered prefix.
//
// Space management: -compact-every starts the background compaction service,
// which runs a log-compaction pass (§3.3.3) whenever the disk-resident log
// prefix exceeds -compact-watermark bytes, then punches the compacted prefix
// out of hlog.dat (never below the latest committed checkpoint image's begin
// address, so -recover-from keeps working). `shadowfax-cli compact` runs a
// pass on demand.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"repro/shadowfax"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	threads := flag.Int("threads", 2, "dispatcher threads (vCPUs)")
	dir := flag.String("data", "", "data directory (empty = in-memory devices, no durability)")
	pageBits := flag.Uint("page-bits", 16, "log2 page size")
	memPages := flag.Int("mem-pages", 256, "in-memory page frames")
	ckptEvery := flag.Duration("checkpoint-every", 0,
		"periodic checkpoint interval (0 = on demand only)")
	recoverFrom := flag.String("recover-from", "",
		"recover from the latest checkpoint image in this data directory (implies -data)")
	compactEvery := flag.Duration("compact-every", 0,
		"compaction service polling period (0 = on demand only, via `shadowfax-cli compact`)")
	compactWatermark := flag.Uint64("compact-watermark", 64<<20,
		"stable-prefix log bytes above which the compaction service runs a pass")
	flag.Parse()

	if *recoverFrom != "" {
		*dir = *recoverFrom
	}

	cluster := shadowfax.NewCluster(shadowfax.WithTCPNetwork(shadowfax.NetAccelerated))
	opts := []shadowfax.ServerOption{
		shadowfax.WithListenAddr(*addr),
		shadowfax.WithThreads(*threads),
		shadowfax.WithIndexBuckets(1 << 16),
		shadowfax.WithMemoryBudget(*pageBits, *memPages, *memPages/2),
	}

	if *dir == "" {
		if *ckptEvery > 0 {
			// Durability onto a memory device is pointless; catch the
			// misconfiguration instead of silently "checkpointing".
			log.Fatal("shadowfax-server: -checkpoint-every requires -data")
		}
		// No -data: the server keeps its log on a private in-memory device
		// (the NewServer default).
	} else {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		logDev, err := shadowfax.NewFileDevice(filepath.Join(*dir, "hlog.dat"),
			shadowfax.LatencyModel{}, 4)
		if err != nil {
			log.Fatal(err)
		}
		defer logDev.Close()
		ckptDev, err := shadowfax.NewFileDevice(filepath.Join(*dir, "checkpoints.dat"),
			shadowfax.LatencyModel{}, 2)
		if err != nil {
			log.Fatal(err)
		}
		defer ckptDev.Close()
		opts = append(opts,
			shadowfax.WithLogDevice(logDev),
			shadowfax.WithCheckpointDevice(ckptDev),
			shadowfax.WithCheckpointEvery(*ckptEvery))
	}
	if *compactEvery > 0 {
		opts = append(opts, shadowfax.WithCompaction(*compactEvery, *compactWatermark))
	}
	if *recoverFrom != "" {
		opts = append(opts, shadowfax.WithRecovery())
	}

	srv, err := shadowfax.NewServer(cluster, "server-1", opts...)
	if err != nil {
		log.Fatal(err)
	}
	mode := "fresh"
	if *recoverFrom != "" {
		mode = fmt.Sprintf("recovered from %s", *recoverFrom)
	}
	fmt.Printf("shadowfax-server listening on %s (%d threads, %s)\n",
		srv.Addr(), *threads, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
