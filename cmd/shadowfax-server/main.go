// Command shadowfax-server runs a single Shadowfax server over real TCP,
// built entirely on the public repro/shadowfax package.
//
// Clustering: every server answers metadata RPCs against its own metadata
// provider, so the first server of a deployment (run without -meta) is the
// cluster's designated metadata endpoint — the state of record for
// ownership views. Additional servers join from other processes with
// -meta <endpoint-addr>: they register themselves in the shared store,
// initially owning no hash ranges, and receive load when a migration (manual
// `shadowfax-cli migrate`, or the automatic balancer) splits a hot range
// onto them. shadowfax-cli routes across the whole cluster with the same
// -meta flag.
//
// Elasticity: -autoscale hosts the load-aware balancer on this server
// (exactly one server per deployment should pass it). The balancer polls
// every server's stats; when the hottest server's ops/sec exceeds the
// coolest's by -autoscale-imbalance it splits the hot server's sampled hash
// distribution at the load median and migrates the hot half — no operator
// involved. Inspect with `shadowfax-cli balance-status`, force a pass with
// `shadowfax-cli rebalance`.
//
// Durability: with -data the server keeps its HybridLog in <dir>/hlog.dat
// and checkpoint images in <dir>/checkpoints.dat. Checkpoints are taken
// periodically (-checkpoint-every) and on demand (`shadowfax-cli
// checkpoint`). After a crash, restart with -recover-from <dir> to rebuild
// the store from the latest committed image: every key durable at the
// checkpoint is served again and client sessions resume past their
// recovered prefix.
//
// Space management: -compact-every starts the background compaction service,
// which runs a log-compaction pass (§3.3.3) whenever the disk-resident log
// prefix exceeds -compact-watermark bytes, then punches the compacted prefix
// out of hlog.dat (never below the latest committed checkpoint image's begin
// address, so -recover-from keeps working). `shadowfax-cli compact` runs a
// pass on demand.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"repro/shadowfax"
)

func main() {
	id := flag.String("id", "server-1", "server identity in the metadata store (unique per cluster)")
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	threads := flag.Int("threads", 2, "dispatcher threads (vCPUs)")
	meta := flag.String("meta", "",
		"join an existing cluster through the metadata endpoint at this address "+
			"(the first server's -addr); the server starts owning no hash ranges")
	dir := flag.String("data", "", "data directory (empty = in-memory devices, no durability)")
	pageBits := flag.Uint("page-bits", 16, "log2 page size")
	memPages := flag.Int("mem-pages", 256, "in-memory page frames")
	ckptEvery := flag.Duration("checkpoint-every", 0,
		"periodic checkpoint interval (0 = on demand only)")
	recoverFrom := flag.String("recover-from", "",
		"recover from the latest checkpoint image in this data directory (implies -data)")
	compactEvery := flag.Duration("compact-every", 0,
		"compaction service polling period (0 = on demand only, via `shadowfax-cli compact`)")
	compactWatermark := flag.Uint64("compact-watermark", 64<<20,
		"stable-prefix log bytes above which the compaction service runs a pass")
	autoscale := flag.Bool("autoscale", false,
		"host the load-aware balancer on this server (one per cluster)")
	autoscaleEvery := flag.Duration("autoscale-every", time.Second,
		"balancer planning-pass period")
	autoscaleImbalance := flag.Float64("autoscale-imbalance", 3.0,
		"hottest/coolest ops-rate ratio that triggers a split")
	autoscaleCooldown := flag.Duration("autoscale-cooldown", 10*time.Second,
		"hold-off after a triggered migration")
	autoscaleMinRate := flag.Float64("autoscale-min-rate", 500,
		"ops/sec floor below which the cluster is considered idle")
	scaleIn := flag.Bool("scale-in", false,
		"let the hosted balancer drain and retire chronically cold servers (needs -autoscale)")
	scaleInBelow := flag.Float64("scale-in-below", 50,
		"ops/sec low-water mark a server must stay under to be drained")
	scaleInPasses := flag.Int("scale-in-passes", 5,
		"consecutive cold planning passes that arm a drain")
	scaleInMin := flag.Int("scale-in-min-servers", 2,
		"server-count floor the balancer never drains below")
	replicaOf := flag.String("replica-of", "",
		"run as a hot standby for the named primary (requires -meta; promotes itself on primary failure)")
	heartbeatEvery := flag.Duration("heartbeat-every", 100*time.Millisecond,
		"replication stream keepalive period")
	failoverAfter := flag.Duration("failover-after", time.Second,
		"replication stream silence after which the standby probes the primary and promotes")
	readCache := flag.Bool("read-cache", false,
		"enable the second-chance read cache (copies twice-read disk-resident records back into memory)")
	readHint := flag.Int("read-hint-bytes", 0,
		"first device read size for a pending (disk-resident) record (0 = default 256)")
	flag.Parse()

	if *recoverFrom != "" {
		*dir = *recoverFrom
	}
	if *replicaOf != "" {
		if *meta == "" {
			log.Fatal("shadowfax-server: -replica-of requires -meta (the standby reaches its primary through the shared metadata endpoint)")
		}
		if *recoverFrom != "" {
			log.Fatal("shadowfax-server: -replica-of and -recover-from are mutually exclusive (a standby re-syncs from its primary)")
		}
	}

	clusterOpts := []shadowfax.ClusterOption{
		shadowfax.WithTCPNetwork(shadowfax.NetAccelerated),
	}
	if *meta != "" {
		clusterOpts = append(clusterOpts, shadowfax.WithRemoteMetadata(*meta))
	}
	cluster := shadowfax.NewCluster(clusterOpts...)
	defer cluster.Close()

	if *meta != "" && *recoverFrom == "" && *replicaOf == "" {
		// Re-registering an id that already owns ranges would reset its view
		// and orphan those ranges cluster-wide (no server would own them, and
		// migration needs an owner to move them back). A joiner that crashed
		// after acquiring ranges must come back via -recover-from (which
		// restores its checkpointed view) or under a fresh -id.
		if v, err := cluster.View(*id); err == nil && len(v.Ranges) > 0 {
			log.Fatalf("shadowfax-server: %q is already registered owning %d range(s) (view #%d); "+
				"restart it with -recover-from, or join with a different -id",
				*id, len(v.Ranges), v.Number)
		}
	}

	opts := []shadowfax.ServerOption{
		shadowfax.WithListenAddr(*addr),
		shadowfax.WithThreads(*threads),
		shadowfax.WithIndexBuckets(1 << 16),
		shadowfax.WithMemoryBudget(*pageBits, *memPages, *memPages/2),
	}
	if *readCache {
		opts = append(opts, shadowfax.WithReadCache(true))
	}
	if *readHint > 0 {
		opts = append(opts, shadowfax.WithReadHintBytes(*readHint))
	}
	if *meta != "" {
		// Joining servers own nothing until a migration (manual or
		// balancer-driven) moves a range onto them.
		opts = append(opts, shadowfax.WithOwnership())
	}
	if *autoscale {
		opts = append(opts, shadowfax.WithAutoScale(shadowfax.AutoScaleConfig{
			Every:        *autoscaleEvery,
			Imbalance:    *autoscaleImbalance,
			Cooldown:     *autoscaleCooldown,
			MinOpsPerSec: *autoscaleMinRate,
		}))
		if *scaleIn {
			opts = append(opts, shadowfax.WithScaleIn(shadowfax.ScaleInConfig{
				BelowOpsPerSec: *scaleInBelow,
				AfterPasses:    *scaleInPasses,
				MinServers:     *scaleInMin,
			}))
		}
	}
	if *replicaOf != "" {
		opts = append(opts, shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      *replicaOf,
			HeartbeatEvery: *heartbeatEvery,
			FailoverAfter:  *failoverAfter,
		}))
	}

	if *dir == "" {
		if *ckptEvery > 0 {
			// Durability onto a memory device is pointless; catch the
			// misconfiguration instead of silently "checkpointing".
			log.Fatal("shadowfax-server: -checkpoint-every requires -data")
		}
		// No -data: the server keeps its log on a private in-memory device
		// (the NewServer default).
	} else {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		logDev, err := shadowfax.NewFileDevice(filepath.Join(*dir, "hlog.dat"),
			shadowfax.LatencyModel{}, 4)
		if err != nil {
			log.Fatal(err)
		}
		defer logDev.Close()
		ckptDev, err := shadowfax.NewFileDevice(filepath.Join(*dir, "checkpoints.dat"),
			shadowfax.LatencyModel{}, 2)
		if err != nil {
			log.Fatal(err)
		}
		defer ckptDev.Close()
		opts = append(opts,
			shadowfax.WithLogDevice(logDev),
			shadowfax.WithCheckpointDevice(ckptDev),
			shadowfax.WithCheckpointEvery(*ckptEvery))
	}
	if *compactEvery > 0 {
		opts = append(opts, shadowfax.WithCompaction(*compactEvery, *compactWatermark))
	}
	if *recoverFrom != "" {
		opts = append(opts, shadowfax.WithRecovery())
	}

	srv, err := shadowfax.NewServer(cluster, *id, opts...)
	if err != nil {
		log.Fatal(err)
	}
	mode := "fresh"
	switch {
	case *replicaOf != "":
		mode = fmt.Sprintf("hot standby for %s", *replicaOf)
	case *recoverFrom != "":
		mode = fmt.Sprintf("recovered from %s", *recoverFrom)
	case *meta != "":
		mode = fmt.Sprintf("joined cluster via metadata endpoint %s", *meta)
	}
	role := ""
	if *meta == "" {
		role = ", metadata endpoint"
	}
	if *autoscale {
		role += ", balancer"
	}
	fmt.Printf("shadowfax-server %s listening on %s (%d threads, %s%s)\n",
		*id, srv.Addr(), *threads, mode, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
