// Command shadowfax-server runs a single Shadowfax server over real TCP.
//
// For multi-server deployments every server needs the same metadata store;
// this binary embeds an in-process one, so it is intended for single-node
// use and for driving the store with cmd/shadowfax-cli. Multi-server
// clusters live in examples/cluster and examples/scaleout (single process,
// shared metadata), matching the simulation substitutions in DESIGN.md §2.
//
// Durability: with -data the server keeps its HybridLog in <dir>/hlog.dat
// and checkpoint images in <dir>/checkpoints.dat. Checkpoints are taken
// periodically (-checkpoint-every) and on demand (the MsgCheckpoint admin
// message; `shadowfax-cli checkpoint`). After a crash, restart with
// -recover-from <dir> to rebuild the store from the latest committed image:
// every key durable at the checkpoint is served again and client sessions
// resume past their recovered prefix.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	threads := flag.Int("threads", 2, "dispatcher threads (vCPUs)")
	dir := flag.String("data", "", "data directory (empty = in-memory devices, no durability)")
	pageBits := flag.Uint("page-bits", 16, "log2 page size")
	memPages := flag.Int("mem-pages", 256, "in-memory page frames")
	ckptEvery := flag.Duration("checkpoint-every", 0,
		"periodic checkpoint interval (0 = on demand only)")
	recoverFrom := flag.String("recover-from", "",
		"recover from the latest checkpoint image in this data directory (implies -data)")
	flag.Parse()

	if *recoverFrom != "" {
		*dir = *recoverFrom
	}

	var logDev storage.Device
	var ckptDev storage.Device
	if *dir == "" {
		logDev = storage.NewMemDevice(storage.LatencyModel{}, 4)
		if *ckptEvery > 0 {
			// Durability onto a memory device is pointless; catch the
			// misconfiguration instead of silently "checkpointing".
			log.Fatal("shadowfax-server: -checkpoint-every requires -data")
		}
	} else {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		fd, err := storage.NewFileDevice(filepath.Join(*dir, "hlog.dat"),
			storage.LatencyModel{}, 4)
		if err != nil {
			log.Fatal(err)
		}
		logDev = fd
		cd, err := storage.NewFileDevice(filepath.Join(*dir, "checkpoints.dat"),
			storage.LatencyModel{}, 2)
		if err != nil {
			log.Fatal(err)
		}
		ckptDev = cd
	}
	defer logDev.Close()
	if ckptDev != nil {
		defer ckptDev.Close()
	}

	meta := metadata.NewStore()
	tr := transport.NewTCP(transport.AcceleratedTCP)
	srv, err := core.NewServer(core.ServerConfig{
		ID: "server-1", Addr: *addr, Threads: *threads,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 16,
			Log: hlog.Config{
				PageBits: *pageBits, MemPages: *memPages,
				MutablePages: *memPages / 2, Device: logDev, LogID: "server-1",
			},
		},
		CheckpointDevice: ckptDev,
		CheckpointEvery:  *ckptEvery,
		Recover:          *recoverFrom != "",
	}, metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	meta.SetServerAddr("server-1", srv.Addr())
	mode := "fresh"
	if *recoverFrom != "" {
		mode = fmt.Sprintf("recovered from %s", *recoverFrom)
	}
	fmt.Printf("shadowfax-server listening on %s (%d threads, %s)\n",
		srv.Addr(), *threads, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
