// Command shadowfax-server runs a single Shadowfax server over real TCP.
//
// For multi-server deployments every server needs the same metadata store;
// this binary embeds an in-process one, so it is intended for single-node
// use and for driving the store with cmd/shadowfax-cli. Multi-server
// clusters live in examples/cluster and examples/scaleout (single process,
// shared metadata), matching the simulation substitutions in DESIGN.md §2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	threads := flag.Int("threads", 2, "dispatcher threads (vCPUs)")
	dir := flag.String("data", "", "data directory (empty = in-memory device)")
	pageBits := flag.Uint("page-bits", 16, "log2 page size")
	memPages := flag.Int("mem-pages", 256, "in-memory page frames")
	flag.Parse()

	var dev storage.Device
	if *dir == "" {
		dev = storage.NewMemDevice(storage.LatencyModel{}, 4)
	} else {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		fd, err := storage.NewFileDevice(filepath.Join(*dir, "hlog.dat"),
			storage.LatencyModel{}, 4)
		if err != nil {
			log.Fatal(err)
		}
		dev = fd
	}
	defer dev.Close()

	meta := metadata.NewStore()
	tr := transport.NewTCP(transport.AcceleratedTCP)
	srv, err := core.NewServer(core.ServerConfig{
		ID: "server-1", Addr: *addr, Threads: *threads,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 16,
			Log: hlog.Config{
				PageBits: *pageBits, MemPages: *memPages,
				MutablePages: *memPages / 2, Device: dev, LogID: "server-1",
			},
		},
	}, metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	meta.SetServerAddr("server-1", srv.Addr())
	fmt.Printf("shadowfax-server listening on %s (%d threads)\n", srv.Addr(), *threads)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
