// Command shadowfax-cli issues ad-hoc operations against shadowfax-server
// processes over TCP, through the public repro/shadowfax package: get / set /
// del / rmw <key> [value|delta] on the data plane, plus the admin commands
// checkpoint (takes a durable checkpoint on the server, see -data /
// -recover-from on shadowfax-server), compact (runs one log-compaction pass
// and prints its statistics, see -compact-every / -compact-watermark), stats
// (prints the server's counters and view), migrate (triggers a manual
// scale-out of a hash range to another server), rebalance (asks the hosted
// balancer for one planning pass, see -autoscale on shadowfax-server),
// balance-status (prints the balancer's counters, cooldown, last decision
// and observed per-server load) and drain (scale-in: migrates every range
// the server owns to the survivors and retires it from the metadata store).
//
// Single-server use bootstraps with the Discover handshake: the CLI
// contacts the server by address, learns its identity and ownership view,
// and routes like any other client. Multi-process clusters pass -meta (the
// metadata endpoint's address, normally the first server's -addr): the CLI
// then shares the cluster's live ownership views through the remote
// metadata provider — data-plane commands route to whichever server owns
// the key, and stats prints the whole cluster's view map.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/shadowfax"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	meta := flag.String("meta", "",
		"cluster metadata endpoint address; enables live multi-server routing")
	timeout := flag.Duration("timeout", 30*time.Second, "per-command timeout")
	flag.Parse()
	args := flag.Args()
	minArgs := map[string]int{
		"checkpoint": 1, "compact": 1, "stats": 1, "drain": 1,
		"rebalance": 1, "balance-status": 1,
		"get": 2, "set": 3, "del": 2, "rmw": 2,
		"migrate": 4,
	}
	if len(args) < 1 || minArgs[args[0]] == 0 || len(args) < minArgs[args[0]] {
		fmt.Fprintln(os.Stderr, `usage: shadowfax-cli [-addr host:port] [-meta host:port] <command> [args]

data plane:   get <key> | set <key> <value> | del <key> | rmw <key> [delta]
admin:        checkpoint | compact | stats
elasticity:   migrate <targetID> <rangeStart> <rangeEnd>   (hex or decimal)
              rebalance | balance-status | drain [serverID]`)
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	clusterOpts := []shadowfax.ClusterOption{shadowfax.WithTCPNetwork(shadowfax.NetFree)}
	if *meta != "" {
		clusterOpts = append(clusterOpts, shadowfax.WithRemoteMetadata(*meta))
	}
	cluster := shadowfax.NewCluster(clusterOpts...)
	defer cluster.Close()
	st, err := cluster.Discover(ctx, *addr)
	if err != nil {
		log.Fatalf("discovering server at %s: %v", *addr, err)
	}
	serverID := st.ServerID

	switch args[0] {
	case "checkpoint":
		info, err := shadowfax.NewAdmin(cluster).Checkpoint(ctx, serverID)
		if err != nil {
			log.Fatalf("checkpoint failed: %v", err)
		}
		fmt.Printf("checkpoint committed: version %d, log prefix %#x\n",
			info.Version, info.LogTail)
		return
	case "compact":
		cs, err := shadowfax.NewAdmin(cluster).Compact(ctx, serverID)
		if err != nil {
			log.Fatalf("compaction failed: %v", err)
		}
		fmt.Printf("compaction pass: scanned %d, kept %d, dropped %d, relocated %d\n",
			cs.Scanned, cs.Kept, cs.Dropped, cs.Relocated)
		fmt.Printf("log begins at %#x; reclaimed %d device bytes, %d shared-tier bytes\n",
			cs.Begin, cs.ReclaimedBytes, cs.TierReclaimed)
		return
	case "stats":
		printStats(st)
		if *meta != "" {
			printClusterViews(cluster)
		}
		return
	case "migrate":
		target := args[1]
		start, err1 := parseHash(args[2])
		end, err2 := parseHash(args[3])
		if err1 != nil || err2 != nil {
			log.Fatalf("bad range bounds %q %q (hex or decimal)", args[2], args[3])
		}
		rng := shadowfax.HashRange{Start: start, End: end}
		if err := shadowfax.NewAdmin(cluster).Migrate(ctx, serverID, target, rng); err != nil {
			log.Fatalf("migrate failed: %v", err)
		}
		fmt.Printf("migration of %v from %s to %s started\n", rng, serverID, target)
		return
	case "drain":
		target := serverID // default: the server -addr points at
		if len(args) > 1 {
			target = args[1]
		}
		res, err := shadowfax.NewAdmin(cluster).Drain(ctx, target)
		if err != nil {
			log.Fatalf("drain failed: %v", err)
		}
		fmt.Printf("drained %s: %d range(s) migrated away, retired=%v; shut the server down\n",
			target, res.Moved, res.Retired)
		return
	case "rebalance":
		d, err := shadowfax.NewAdmin(cluster).Rebalance(ctx, serverID)
		if err != nil {
			log.Fatalf("rebalance failed: %v", err)
		}
		if d.Acted {
			fmt.Printf("rebalance: migrating %v from %s to %s\n", d.Range, d.Source, d.Target)
		} else {
			fmt.Printf("rebalance: no action (%s)\n", d.Reason)
		}
		return
	case "balance-status":
		bs, err := shadowfax.NewAdmin(cluster).BalanceStatus(ctx, serverID)
		if err != nil {
			log.Fatalf("balance-status failed: %v", err)
		}
		if !bs.Enabled {
			fmt.Println("balancer: not enabled on this server (start it with -autoscale)")
		} else {
			fmt.Printf("balancer: %d passes, %d migrations triggered", bs.Passes, bs.Migrations)
			if bs.Cooldown > 0 {
				fmt.Printf(", cooling down for %v", bs.Cooldown.Round(time.Millisecond))
			}
			fmt.Println()
			if bs.Last.Source != "" || bs.Last.Reason != "" {
				if bs.Last.Acted {
					fmt.Printf("  last decision: migrate %v from %s to %s\n",
						bs.Last.Range, bs.Last.Source, bs.Last.Target)
				} else {
					fmt.Printf("  last decision: no action (%s)\n", bs.Last.Reason)
				}
			}
			ids := make([]string, 0, len(bs.Rates))
			for id := range bs.Rates {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				fmt.Printf("  load %-12s %.0f ops/s\n", id, bs.Rates[id])
			}
		}
		if bs.DegradedFor > 0 {
			fmt.Printf("metadata: DEGRADED — answering from cached views for %v (endpoint unreachable)\n",
				bs.DegradedFor.Round(time.Millisecond))
		}
		// The in-flight migration set is cluster state: any server reports
		// it, balancer-enabled or not.
		if len(bs.InFlight) == 0 {
			fmt.Println("in-flight migrations: none")
		} else {
			fmt.Printf("in-flight migrations: %d\n", len(bs.InFlight))
			for _, m := range bs.InFlight {
				state := "transferring"
				if m.SourceDone {
					state = "source done"
				}
				fmt.Printf("  #%d epoch %d  %s -> %s  %v  (%s)\n",
					m.ID, m.Epoch, m.Source, m.Target, m.Range, state)
			}
		}
		return
	}

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	key := []byte(args[1])
	switch args[0] {
	case "get":
		v, err := cl.Get(ctx, key)
		switch {
		case errors.Is(err, shadowfax.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			log.Fatal(err)
		case len(v) == 8:
			fmt.Printf("%q = %d (8-byte counter)\n", args[1],
				binary.LittleEndian.Uint64(v))
		default:
			fmt.Printf("%q = %q\n", args[1], v)
		}
	case "set":
		if err := cl.Set(ctx, key, []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "del":
		if err := cl.Delete(ctx, key); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "rmw":
		delta := uint64(1)
		if len(args) >= 3 {
			d, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil {
				log.Fatal(err)
			}
			delta = d
		}
		input := make([]byte, 8)
		binary.LittleEndian.PutUint64(input, delta)
		if err := cl.RMW(ctx, key, input); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	default:
		log.Fatalf("unknown op %q", args[0])
	}
}

// parseHash accepts hex (with or without 0x) and decimal range bounds.
func parseHash(s string) (uint64, error) {
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return v, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

func printStats(st shadowfax.ServerStats) {
	fmt.Printf("server %s (view #%d)\n", st.ServerID, st.ViewNumber)
	fmt.Printf("  ops completed      %d\n", st.OpsCompleted)
	fmt.Printf("  batches            %d accepted, %d rejected, %d undecodable\n",
		st.BatchesAccepted, st.BatchesRejected, st.DecodeErrors)
	fmt.Printf("  pending ops        %d (store reads issued: %d)\n",
		st.PendingOps, st.StorePendingReads)
	fmt.Printf("  cold reads         %d coalesced, %d batched submissions\n",
		st.PendingCoalesced, st.DeviceBatchReads)
	fmt.Printf("  read cache         %d copies to tail, %d memory hits\n",
		st.ReadCacheCopies, st.ReadCacheHits)
	fmt.Printf("  log footprint      %d bytes\n", st.LogBytes)
	fmt.Printf("  checkpoints        %d (%d failed)\n",
		st.Checkpoints, st.CheckpointFailures)
	fmt.Printf("  compaction passes  %d (%d failed), %d records relocated, %d bytes reclaimed\n",
		st.Compactions, st.CompactionFailures, st.CompactRelocated,
		st.CompactReclaimedBytes)
	if st.BalancePasses > 0 {
		fmt.Printf("  balancer           %d passes, %d migrations triggered\n",
			st.BalancePasses, st.BalanceMigrations)
	}
}

// printClusterViews prints every server's live ownership view from the
// shared metadata provider (multi-process clusters, -meta).
func printClusterViews(cluster *shadowfax.Cluster) {
	views := cluster.Ownership()
	ids := make([]string, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Println("cluster ownership:")
	for _, id := range ids {
		v := views[id]
		fmt.Printf("  %-12s view #%-4d", id, v.Number)
		if len(v.Ranges) == 0 {
			fmt.Print(" (no ranges)")
		}
		for _, r := range v.Ranges {
			fmt.Printf(" %v", r)
		}
		fmt.Println()
	}
}
