// Command shadowfax-cli issues ad-hoc operations against a shadowfax-server
// over TCP: get / set / del / rmw <key> [value|delta], plus the admin
// commands checkpoint (takes a durable checkpoint on the server, see -data /
// -recover-from on shadowfax-server) and compact (runs one log-compaction
// pass and prints its statistics, see -compact-every / -compact-watermark).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 || (args[0] != "checkpoint" && args[0] != "compact" && len(args) < 2) {
		fmt.Fprintln(os.Stderr, "usage: shadowfax-cli [-addr host:port] <get|set|del|rmw|checkpoint|compact> [key] [value|delta]")
		os.Exit(2)
	}

	tr := transport.NewTCP(transport.Free)
	conn, err := tr.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if args[0] == "checkpoint" {
		if err := conn.Send(wire.EncodeCheckpointReq()); err != nil {
			log.Fatal(err)
		}
		frame, err := recvWithTimeout(conn, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := wire.DecodeCheckpointResp(frame)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.OK {
			log.Fatalf("checkpoint failed: %s", resp.Err)
		}
		fmt.Printf("checkpoint committed: version %d, log prefix %#x\n",
			resp.Version, resp.Tail)
		return
	}

	if args[0] == "compact" {
		if err := conn.Send(wire.EncodeCompactReq()); err != nil {
			log.Fatal(err)
		}
		frame, err := recvWithTimeout(conn, 60*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := wire.DecodeCompactResp(frame)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.OK {
			log.Fatalf("compaction failed: %s", resp.Err)
		}
		fmt.Printf("compaction pass: scanned %d, kept %d, dropped %d, relocated %d\n",
			resp.Scanned, resp.Kept, resp.Dropped, resp.Relocated)
		fmt.Printf("log begins at %#x; reclaimed %d device bytes, %d shared-tier bytes\n",
			resp.Begin, resp.ReclaimedBytes, resp.TierReclaimed)
		return
	}

	op := wire.Op{Seq: 1, Key: []byte(args[1])}
	switch args[0] {
	case "get":
		op.Kind = wire.OpRead
	case "set":
		if len(args) < 3 {
			log.Fatal("set needs a value")
		}
		op.Kind = wire.OpUpsert
		op.Value = []byte(args[2])
	case "del":
		op.Kind = wire.OpDelete
	case "rmw":
		op.Kind = wire.OpRMW
		delta := uint64(1)
		if len(args) >= 3 {
			d, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil {
				log.Fatal(err)
			}
			delta = d
		}
		op.Value = make([]byte, 8)
		binary.LittleEndian.PutUint64(op.Value, delta)
	default:
		log.Fatalf("unknown op %q", args[0])
	}

	// The view number is learned by probing: send with view 1 and follow
	// the server's hint on rejection.
	view := uint64(1)
	for attempt := 0; attempt < 3; attempt++ {
		batch := wire.RequestBatch{View: view, SessionID: 1, Ops: []wire.Op{op}}
		if err := conn.Send(wire.AppendRequestBatch(nil, &batch)); err != nil {
			log.Fatal(err)
		}
		var resp wire.ResponseBatch
		for {
			frame, err := recvWithTimeout(conn, 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			if err := wire.DecodeResponseBatch(frame, &resp); err != nil {
				log.Fatal(err)
			}
			if resp.Rejected || len(resp.Results) > 0 {
				break
			}
			// Empty batch ack: the operation went to storage (pending I/O)
			// and its result rides a later deferred-results frame.
		}
		if resp.Rejected {
			view = resp.ServerView
			continue
		}
		for _, r := range resp.Results {
			switch r.Status {
			case wire.StatusOK:
				if op.Kind == wire.OpRead {
					if len(r.Value) == 8 {
						fmt.Printf("%q = %d (8-byte counter)\n", args[1],
							binary.LittleEndian.Uint64(r.Value))
					} else {
						fmt.Printf("%q = %q\n", args[1], r.Value)
					}
				} else {
					fmt.Println("OK")
				}
			case wire.StatusNotFound:
				fmt.Println("(not found)")
			default:
				fmt.Println("error")
			}
		}
		return
	}
	log.Fatal("could not agree on a view with the server")
}

func recvWithTimeout(conn transport.Conn, d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		frame, ok, err := conn.TryRecv()
		if err != nil {
			return nil, err
		}
		if ok {
			return frame, nil
		}
		time.Sleep(time.Millisecond)
	}
	return nil, fmt.Errorf("timeout after %v", d)
}
