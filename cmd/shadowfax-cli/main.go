// Command shadowfax-cli issues ad-hoc operations against a shadowfax-server
// over TCP, through the public repro/shadowfax package: get / set / del /
// rmw <key> [value|delta] on the data plane, plus the admin commands
// checkpoint (takes a durable checkpoint on the server, see -data /
// -recover-from on shadowfax-server), compact (runs one log-compaction pass
// and prints its statistics, see -compact-every / -compact-watermark) and
// stats (prints the server's counters and view).
//
// The CLI bootstraps with the Discover handshake: it contacts the server by
// address, learns its identity and ownership view, and then routes like any
// other client.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/shadowfax"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-command timeout")
	flag.Parse()
	args := flag.Args()
	admin := map[string]bool{"checkpoint": true, "compact": true, "stats": true}
	if len(args) < 1 || (!admin[args[0]] && len(args) < 2) {
		fmt.Fprintln(os.Stderr, "usage: shadowfax-cli [-addr host:port] <get|set|del|rmw|checkpoint|compact|stats> [key] [value|delta]")
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cluster := shadowfax.NewCluster(shadowfax.WithTCPNetwork(shadowfax.NetFree))
	st, err := cluster.Discover(ctx, *addr)
	if err != nil {
		log.Fatalf("discovering server at %s: %v", *addr, err)
	}
	serverID := st.ServerID

	switch args[0] {
	case "checkpoint":
		info, err := shadowfax.NewAdmin(cluster).Checkpoint(ctx, serverID)
		if err != nil {
			log.Fatalf("checkpoint failed: %v", err)
		}
		fmt.Printf("checkpoint committed: version %d, log prefix %#x\n",
			info.Version, info.LogTail)
		return
	case "compact":
		cs, err := shadowfax.NewAdmin(cluster).Compact(ctx, serverID)
		if err != nil {
			log.Fatalf("compaction failed: %v", err)
		}
		fmt.Printf("compaction pass: scanned %d, kept %d, dropped %d, relocated %d\n",
			cs.Scanned, cs.Kept, cs.Dropped, cs.Relocated)
		fmt.Printf("log begins at %#x; reclaimed %d device bytes, %d shared-tier bytes\n",
			cs.Begin, cs.ReclaimedBytes, cs.TierReclaimed)
		return
	case "stats":
		fmt.Printf("server %s (view #%d)\n", st.ServerID, st.ViewNumber)
		fmt.Printf("  ops completed      %d\n", st.OpsCompleted)
		fmt.Printf("  batches            %d accepted, %d rejected, %d undecodable\n",
			st.BatchesAccepted, st.BatchesRejected, st.DecodeErrors)
		fmt.Printf("  pending ops        %d (store reads issued: %d)\n",
			st.PendingOps, st.StorePendingReads)
		fmt.Printf("  checkpoints        %d (%d failed)\n",
			st.Checkpoints, st.CheckpointFailures)
		fmt.Printf("  compaction passes  %d (%d failed), %d records relocated, %d bytes reclaimed\n",
			st.Compactions, st.CompactionFailures, st.CompactRelocated,
			st.CompactReclaimedBytes)
		return
	}

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	key := []byte(args[1])
	switch args[0] {
	case "get":
		v, err := cl.Get(ctx, key)
		switch {
		case errors.Is(err, shadowfax.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			log.Fatal(err)
		case len(v) == 8:
			fmt.Printf("%q = %d (8-byte counter)\n", args[1],
				binary.LittleEndian.Uint64(v))
		default:
			fmt.Printf("%q = %q\n", args[1], v)
		}
	case "set":
		if len(args) < 3 {
			log.Fatal("set needs a value")
		}
		if err := cl.Set(ctx, key, []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "del":
		if err := cl.Delete(ctx, key); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "rmw":
		delta := uint64(1)
		if len(args) >= 3 {
			d, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil {
				log.Fatal(err)
			}
			delta = d
		}
		input := make([]byte, 8)
		binary.LittleEndian.PutUint64(input, delta)
		if err := cl.RMW(ctx, key, input); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	default:
		log.Fatalf("unknown op %q", args[0])
	}
}
