// Command shadowfax-vet runs the project's analyzer suite (epochblock,
// hotpathalloc, wireguard, atomicpad — see internal/tools/analyzers) over
// module packages.
//
// Two modes:
//
//	shadowfax-vet ./...                 standalone: loads packages with the
//	                                    go tool, analyzes each with its
//	                                    in-package test files, exits 1 on
//	                                    findings
//	go vet -vettool=$(which shadowfax-vet) ./...
//	                                    vet-tool: speaks the cmd/go unit-
//	                                    checker protocol (-V=full, -flags,
//	                                    one *.cfg argument per package unit)
//
// Findings print one per line as file:line:col: analyzer: message.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/tools/analysis"
	"repro/internal/tools/analyzers/suite"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		fmt.Printf("shadowfax-vet version %s\n", toolID())
	case len(args) == 1 && args[0] == "-flags":
		// No analyzer exposes flags; tell cmd/go so.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

// toolID derives a content-based version for cmd/go's action cache: changing
// any analyzer changes the binary, which must invalidate cached vet results.
func toolID() string {
	exe, err := os.Executable()
	if err != nil {
		return "devel"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "devel"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "devel"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// runStandalone loads patterns (default ./...) from the current directory
// and analyzes every matched package.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the unit description cmd/go hands a -vettool (the unitchecker
// protocol's *.cfg JSON).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one go vet package unit. Exit codes follow the protocol:
// 0 clean, 2 findings, 1 internal failure.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite computes no cross-package facts, but cmd/go expects the vetx
	// output to exist before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("{}"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	im := analysis.ConfigImporter(fset, cfg.Compiler, cfg.ImportMap, cfg.PackageFile)
	tp, files, info, err := analysis.TypecheckFiles(fset, cfg.ImportPath, cfg.GoFiles, im, sizes())
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
		return 1
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tp,
		TypesInfo:  info,
		Sizes:      sizes(),
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowfax-vet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func sizes() types.Sizes {
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	if s := types.SizesFor("gc", arch); s != nil {
		return s
	}
	return types.SizesFor("gc", runtime.GOARCH)
}
