package repro_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/shadowfax"
)

// TestSmokeEndToEnd is the root sanity check: a tiny put/get workload
// through the full client→transport→server→FASTER stack. It is deliberately
// small — the real coverage lives in the internal packages; this guards the
// public assembly the examples and benchmarks rely on.
func TestSmokeEndToEnd(t *testing.T) {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()

	srv, err := core.NewServer(core.ServerConfig{
		ID: "smoke", Addr: "smoke", Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "smoke"},
		},
	}, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	meta.SetServerAddr("smoke", srv.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	const n = 64
	for i := 0; i < n; i++ {
		ct.Upsert([]byte(fmt.Sprintf("smoke-%02d", i)), []byte(fmt.Sprintf("v%02d", i)), nil)
	}
	got := make([]string, n)
	status := make([]wire.ResultStatus, n)
	for i := 0; i < n; i++ {
		i := i
		status[i] = 255
		ct.Read([]byte(fmt.Sprintf("smoke-%02d", i)), func(st wire.ResultStatus, v []byte) {
			status[i] = st
			got[i] = string(v)
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatalf("drain timed out with %d outstanding", ct.Outstanding())
	}
	for i := 0; i < n; i++ {
		if status[i] != wire.StatusOK || got[i] != fmt.Sprintf("v%02d", i) {
			t.Fatalf("key %d: status %v value %q", i, status[i], got[i])
		}
	}
	if ops := srv.Stats().OpsCompleted.Load(); ops < n*2 {
		t.Fatalf("server completed %d ops, want >= %d", ops, n*2)
	}
}

// TestPublicAPISmoke is TestSmokeEndToEnd through the public shadowfax
// package: the supported surface (cluster, functional options, futures,
// typed errors) assembled exactly the way cmd/ and examples/ use it.
func TestPublicAPISmoke(t *testing.T) {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	srv, err := shadowfax.NewServer(cluster, "smoke",
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<10),
		shadowfax.WithMemoryBudget(12, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster, shadowfax.WithBatchOps(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 64
	for i := 0; i < n; i++ {
		cl.SetAsync([]byte(fmt.Sprintf("smoke-%02d", i)),
			[]byte(fmt.Sprintf("v%02d", i))).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := cl.Get(ctx, []byte(fmt.Sprintf("smoke-%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("key %d: %q, %v", i, v, err)
		}
	}
	if _, err := cl.Get(ctx, []byte("absent")); !errors.Is(err, shadowfax.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if ops := srv.Stats().OpsCompleted; ops < n*2 {
		t.Fatalf("server completed %d ops, want >= %d", ops, n*2)
	}
}
