// Telemetry: the paper's §1 motivating workload. A fleet of simulated
// sensors streams heartbeat events into Shadowfax as read-modify-write
// increments (each event bumps its device's counter), while an analytics
// client concurrently samples hot devices — ingest and query on the same
// store, no stalls.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

const (
	devices   = 50_000
	ingesters = 2
	runFor    = 3 * time.Second
)

func deviceKey(id uint64) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, id)
	return k
}

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()

	srv, err := core.NewServer(core.ServerConfig{
		ID: "ingest-1", Addr: "ingest-1", Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 14,
			Log: hlog.Config{PageBits: 16, MemPages: 128, MutablePages: 64,
				Device: dev, LogID: "ingest-1"},
		},
	}, metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	meta.SetServerAddr("ingest-1", srv.Addr())

	// Ingest threads: Zipfian device activity (a few chatty sensors, a
	// long tail), one RMW increment per heartbeat.
	stop := make(chan struct{})
	done := make(chan uint64, ingesters)
	for t := 0; t < ingesters; t++ {
		go func(seed uint64) {
			ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
			if err != nil {
				done <- 0
				return
			}
			defer ct.Close()
			z := ycsb.NewZipfian(devices, ycsb.DefaultTheta, seed)
			one := make([]byte, 8)
			binary.LittleEndian.PutUint64(one, 1)
			var sent uint64
			for {
				select {
				case <-stop:
					ct.Drain(10 * time.Second)
					done <- sent
					return
				default:
				}
				for i := 0; i < 128; i++ {
					ct.RMW(deviceKey(z.Next()), one, nil)
					sent++
				}
				ct.Flush()
				for ct.Outstanding() > 2048 {
					if ct.Poll() == 0 {
						time.Sleep(10 * time.Microsecond)
					}
				}
			}
		}(uint64(t + 1))
	}

	// Analytics: periodically sample a handful of devices' heartbeat
	// totals while ingest continues.
	qc, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		var total uint64
		var found int
		for d := uint64(0); d < 16; d++ {
			qc.Read(deviceKey(d), func(st wire.ResultStatus, v []byte) {
				if st == wire.StatusOK && len(v) >= 8 {
					total += binary.LittleEndian.Uint64(v)
					found++
				}
			})
		}
		qc.Drain(5 * time.Second)
		fmt.Printf("t=%-6s sampled %2d devices, %8d heartbeats among them\n",
			time.Until(deadline).Round(time.Second), found, total)
	}
	close(stop)
	var ingested uint64
	for t := 0; t < ingesters; t++ {
		ingested += <-done
	}
	fmt.Printf("ingested ~%d heartbeats across %d devices (%.2f Mops/s)\n",
		ingested, devices, float64(ingested)/runFor.Seconds()/1e6)
}
