// Telemetry: the paper's §1 motivating workload. A fleet of simulated
// sensors streams heartbeat events into Shadowfax as read-modify-write
// increments (each event bumps its device's counter), while an analytics
// client concurrently samples hot devices — ingest and query on the same
// store, no stalls.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ycsb"
	"repro/shadowfax"
)

const (
	devices   = 50_000
	ingesters = 2
	runFor    = 3 * time.Second
)

func deviceKey(id uint64) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, id)
	return k
}

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))
	srv, err := shadowfax.NewServer(cluster, "ingest-1",
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<14),
		shadowfax.WithMemoryBudget(16, 128, 64))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	// Ingest clients: Zipfian device activity (a few chatty sensors, a
	// long tail), one async RMW increment per heartbeat; WithMaxOutstanding
	// provides the flow control.
	stop := make(chan struct{})
	done := make(chan uint64, ingesters)
	for t := 0; t < ingesters; t++ {
		go func(seed uint64) {
			ct, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(2048))
			if err != nil {
				done <- 0
				return
			}
			defer ct.Close()
			z := ycsb.NewZipfian(devices, ycsb.DefaultTheta, seed)
			one := make([]byte, 8)
			binary.LittleEndian.PutUint64(one, 1)
			var sent uint64
			for {
				select {
				case <-stop:
					dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
					ct.Drain(dctx)
					cancel()
					done <- sent
					return
				default:
				}
				for i := 0; i < 128; i++ {
					ct.RMWAsync(deviceKey(z.Next()), one).Release()
					sent++
				}
				ct.Flush()
			}
		}(uint64(t + 1))
	}

	// Analytics: periodically sample a handful of devices' heartbeat
	// totals while ingest continues.
	qc, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		var total uint64
		var found int
		for d := uint64(0); d < 16; d++ {
			qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			v, err := qc.Get(qctx, deviceKey(d))
			cancel()
			if err == nil && len(v) >= 8 {
				total += binary.LittleEndian.Uint64(v)
				found++
			}
		}
		fmt.Printf("t=%-6s sampled %2d devices, %8d heartbeats among them\n",
			time.Until(deadline).Round(time.Second), found, total)
	}
	close(stop)
	var ingested uint64
	for t := 0; t < ingesters; t++ {
		ingested += <-done
	}
	fmt.Printf("ingested ~%d heartbeats across %d devices (%.2f Mops/s)\n",
		ingested, devices, float64(ingested)/runFor.Seconds()/1e6)
}
