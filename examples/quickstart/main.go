// Quickstart: boot a Shadowfax server in-process, connect through the
// public shadowfax package, and run reads, upserts, read-modify-writes and
// deletes — synchronously with contexts, and asynchronously with futures.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"repro/shadowfax"
)

func main() {
	// A Cluster bundles the deployment-wide fixtures: the metadata store
	// (ZooKeeper's stand-in) and the transport with its network cost model.
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))

	tier := shadowfax.NewSharedTier(shadowfax.LatencyModel{})
	srv, err := shadowfax.NewServer(cluster, "server-1",
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<12),
		shadowfax.WithSharedTier(tier))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Blind write, then read back — synchronous, context-aware.
	if err := cl.Set(ctx, []byte("greeting"), []byte("hello, shadowfax")); err != nil {
		log.Fatal(err)
	}
	v, err := cl.Get(ctx, []byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)

	// Read-modify-write: 8-byte little-endian counters (YCSB-F's op),
	// pipelined asynchronously and settled with one Drain.
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)
	for i := 0; i < 42; i++ {
		cl.RMWAsync([]byte("clicks"), delta).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	v, err = cl.Get(ctx, []byte("clicks"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clicks = %d\n", binary.LittleEndian.Uint64(v))

	// Delete; a subsequent read reports ErrNotFound.
	if err := cl.Delete(ctx, []byte("greeting")); err != nil {
		log.Fatal(err)
	}
	_, err = cl.Get(ctx, []byte("greeting"))
	fmt.Printf("after delete: %v (is ErrNotFound: %v)\n",
		err, errors.Is(err, shadowfax.ErrNotFound))

	fmt.Printf("server completed %d operations\n", srv.Stats().OpsCompleted)
}
