// Quickstart: boot a Shadowfax server in-process, connect the asynchronous
// client library, and run reads, upserts, read-modify-writes and deletes.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	// Every deployment shares three fixtures: a metadata store (ZooKeeper's
	// stand-in), a transport (with its network cost model), and a shared
	// remote storage tier.
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)
	tier := storage.NewSharedTier(storage.LatencyModel{})
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()

	srv, err := core.NewServer(core.ServerConfig{
		ID: "server-1", Addr: "server-1", Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 12,
			Log: hlog.Config{PageBits: 16, MemPages: 64, MutablePages: 32,
				Device: dev, Tier: tier, LogID: "server-1"},
		},
	}, metadata.FullRange) // owns the whole hash space
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	meta.SetServerAddr("server-1", srv.Addr())

	// One client thread: all operations are asynchronous; callbacks run
	// during Poll/Drain on this goroutine.
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	defer ct.Close()

	// Blind write, then read back.
	ct.Upsert([]byte("greeting"), []byte("hello, shadowfax"), nil)
	ct.Read([]byte("greeting"), func(st wire.ResultStatus, v []byte) {
		fmt.Printf("greeting = %q (%v)\n", v, st)
	})

	// Read-modify-write: 8-byte little-endian counters (YCSB-F's op).
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)
	for i := 0; i < 41; i++ {
		ct.RMW([]byte("clicks"), delta, nil)
	}
	binary.LittleEndian.PutUint64(delta, 1)
	ct.RMW([]byte("clicks"), delta, nil)
	ct.Read([]byte("clicks"), func(st wire.ResultStatus, v []byte) {
		fmt.Printf("clicks = %d\n", binary.LittleEndian.Uint64(v))
	})

	// Delete.
	ct.Delete([]byte("greeting"), nil)
	ct.Read([]byte("greeting"), func(st wire.ResultStatus, v []byte) {
		fmt.Printf("after delete: %v\n", st)
	})

	if !ct.Drain(10 * time.Second) {
		log.Fatal("operations did not complete")
	}
	fmt.Printf("server completed %d operations\n", srv.Stats().OpsCompleted.Load())
}
