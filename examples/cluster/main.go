// Cluster: a hash-partitioned multi-server deployment. Four servers each
// own a quarter of the hash space; the client library routes every
// operation by its cached ownership mappings, and batches are validated
// with a single view-number comparison at each server (§3.2).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

const (
	servers = 4
	keys    = 40_000
)

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)

	// Carve the hash space into equal quarters.
	width := ^uint64(0) / servers
	var nodes []*core.Server
	for i := 0; i < servers; i++ {
		start := uint64(i) * width
		end := start + width
		if i == servers-1 {
			end = ^uint64(0)
		}
		id := fmt.Sprintf("node-%d", i+1)
		dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
		defer dev.Close()
		srv, err := core.NewServer(core.ServerConfig{
			ID: id, Addr: id, Threads: 1,
			Transport: tr, Meta: meta,
			Store: faster.Config{
				IndexBuckets: 1 << 12,
				Log: hlog.Config{PageBits: 16, MemPages: 64, MutablePages: 32,
					Device: dev, LogID: id},
			},
		}, metadata.HashRange{Start: start, End: end})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		meta.SetServerAddr(id, srv.Addr())
		nodes = append(nodes, srv)
	}

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	defer ct.Close()

	// Ingest: the client hashes each key and routes it to its owner.
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	start := time.Now()
	for i := uint64(0); i < keys; i++ {
		ct.RMW(ycsb.KeyBytes(i), one, nil)
		for ct.Outstanding() > 2048 {
			ct.Poll()
		}
	}
	if !ct.Drain(60 * time.Second) {
		log.Fatal("load did not drain")
	}
	fmt.Printf("ingested %d keys in %v\n", keys, time.Since(start).Round(time.Millisecond))

	for _, n := range nodes {
		v := n.CurrentView()
		fmt.Printf("  %-8s view #%d served %7d ops for %s\n",
			n.ID(), v.Number, n.Stats().OpsCompleted.Load(), v.Ranges[0])
	}

	// Spot-check a few keys land with the right counters.
	bad := 0
	for i := uint64(0); i < 100; i++ {
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || binary.LittleEndian.Uint64(v) != 1 {
				bad++
			}
		})
	}
	ct.Drain(10 * time.Second)
	fmt.Printf("verification: %d/100 keys wrong\n", bad)
}
