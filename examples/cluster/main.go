// Cluster: a hash-partitioned multi-server deployment. Four servers each
// own a quarter of the hash space; the client library routes every
// operation by its cached ownership mappings, and batches are validated
// with a single view-number comparison at each server (§3.2).
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ycsb"
	"repro/shadowfax"
)

const (
	servers = 4
	keys    = 40_000
)

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))

	// Carve the hash space into equal quarters.
	width := ^uint64(0) / servers
	var nodes []*shadowfax.Server
	for i := 0; i < servers; i++ {
		start := uint64(i) * width
		end := start + width
		if i == servers-1 {
			end = ^uint64(0)
		}
		id := fmt.Sprintf("node-%d", i+1)
		srv, err := shadowfax.NewServer(cluster, id,
			shadowfax.WithThreads(1),
			shadowfax.WithIndexBuckets(1<<12),
			shadowfax.WithOwnership(shadowfax.HashRange{Start: start, End: end}))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		nodes = append(nodes, srv)
	}

	// The client hashes each key and routes it to its owner; WithMaxOutstanding
	// is the flow control the old callback API made callers hand-roll.
	cl, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(2048))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	start := time.Now()
	for i := uint64(0); i < keys; i++ {
		cl.RMWAsync(ycsb.KeyBytes(i), one).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d keys in %v\n", keys, time.Since(start).Round(time.Millisecond))

	for _, n := range nodes {
		st := n.Stats()
		v := n.CurrentView()
		fmt.Printf("  %-8s view #%d served %7d ops for %s\n",
			n.ID(), st.ViewNumber, st.OpsCompleted, v.Ranges[0])
	}

	// Spot-check a few keys land with the right counters.
	bad := 0
	for i := uint64(0); i < 100; i++ {
		v, err := cl.Get(ctx, ycsb.KeyBytes(i))
		if err != nil || binary.LittleEndian.Uint64(v) != 1 {
			bad++
		}
	}
	fmt.Printf("verification: %d/100 keys wrong\n", bad)
}
