// Recovery: the full durability loop in one process — load a server, take a
// checkpoint through the wire admin message, crash the server (process state
// gone; the log and checkpoint devices survive, standing in for local SSD),
// recover a new server from the latest image, and resume the client session
// with replay of the operations that were in flight at the crash (§2.1 CPR +
// §3.3.1 client-assisted recovery).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)

	// These two devices are the durable substrate: they outlive the server
	// instance, exactly like an SSD outlives a crashed process.
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	serverConfig := func(recover bool) core.ServerConfig {
		return core.ServerConfig{
			ID: "server-1", Addr: "server-1", Threads: 2,
			Transport: tr, Meta: meta,
			Store: faster.Config{
				IndexBuckets: 1 << 12,
				Log: hlog.Config{PageBits: 12, MemPages: 32, MutablePages: 16,
					Device: logDev, LogID: "server-1"},
			},
			CheckpointDevice: ckptDev,
			Recover:          recover,
		}
	}

	srv, err := core.NewServer(serverConfig(false), metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	meta.SetServerAddr("server-1", srv.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer ct.Close()

	// Phase 1: durable data — 10k keys plus a counter, then a checkpoint.
	const durable = 10_000
	for i := 0; i < durable; i++ {
		ct.Upsert(key(i), val(i), nil)
	}
	for i := 0; i < 8; i++ {
		ct.RMW([]byte("counter"), delta(1), nil)
	}
	if !ct.Drain(10 * time.Second) {
		log.Fatal("load did not drain")
	}
	resp, err := ct.Checkpoint("server-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint committed: version %d, log prefix %#x\n",
		resp.Version, resp.Tail)

	// Phase 2: operations still in flight when the server dies. CPR rolls
	// the store back to the checkpoint; the client replays these afterwards.
	const inflight = 100
	for i := 0; i < inflight; i++ {
		ct.Upsert(key(durable+i), val(durable+i), nil)
	}
	for i := 0; i < 4; i++ {
		ct.RMW([]byte("counter"), delta(1), nil)
	}
	ct.Flush()
	fmt.Printf("crashing with %d operations in flight\n", ct.Outstanding())
	srv.Close() // the crash: memory, sessions, dispatchers — all gone

	// Recovery: a new server instance rebuilds itself from the image.
	start := time.Now()
	srv2, err := core.NewServer(serverConfig(true))
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	meta.SetServerAddr("server-1", srv2.Addr())
	fmt.Printf("server recovered in %v (view %d restored)\n",
		time.Since(start).Round(time.Microsecond), srv2.CurrentView().Number)

	// Client-assisted session recovery: learn the durable prefix, replay
	// past it, and drain the replayed operations.
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	if !ct.Drain(10 * time.Second) {
		log.Fatal("replay did not drain")
	}

	// Verify: every key — checkpointed and replayed — plus the exact counter.
	bad := 0
	for i := 0; i < durable+inflight; i++ {
		i := i
		ct.Read(key(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || string(v) != string(val(i)) {
				bad++
			}
		})
	}
	var counter uint64
	ct.Read([]byte("counter"), func(st wire.ResultStatus, v []byte) {
		if st == wire.StatusOK && len(v) == 8 {
			counter = binary.LittleEndian.Uint64(v)
		}
	})
	if !ct.Drain(30 * time.Second) {
		log.Fatal("verification did not drain")
	}
	fmt.Printf("verified %d keys after recovery (%d bad), counter = %d (want 12)\n",
		durable+inflight, bad, counter)
	if bad != 0 || counter != 12 {
		log.Fatal("recovery verification FAILED")
	}
	fmt.Println("recovery verification PASSED: durable prefix served, session replayed exactly once")
}

func key(i int) []byte { return []byte(fmt.Sprintf("user-%07d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("profile-%07d", i)) }

func delta(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}
