// Recovery: the full durability loop in one process — load a server, take a
// checkpoint through the Admin RPC, crash the server (process state gone;
// the log and checkpoint devices survive, standing in for local SSD),
// recover a new server from the latest image, and resume the client session
// with replay of the operations that were in flight at the crash (§2.1 CPR +
// §3.3.1 client-assisted recovery).
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/shadowfax"
)

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))

	// These two devices are the durable substrate: they outlive the server
	// instance, exactly like an SSD outlives a crashed process.
	logDev := shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2)
	defer ckptDev.Close()

	newServer := func(recover bool) (*shadowfax.Server, error) {
		opts := []shadowfax.ServerOption{
			shadowfax.WithThreads(2),
			shadowfax.WithIndexBuckets(1 << 12),
			shadowfax.WithMemoryBudget(12, 32, 16),
			shadowfax.WithLogDevice(logDev),
			shadowfax.WithCheckpointDevice(ckptDev),
		}
		if recover {
			opts = append(opts, shadowfax.WithRecovery())
		}
		return shadowfax.NewServer(cluster, "server-1", opts...)
	}

	srv, err := newServer(false)
	if err != nil {
		log.Fatal(err)
	}

	cl, err := shadowfax.Dial(cluster, shadowfax.WithBatchOps(64))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Phase 1: durable data — 10k keys plus a counter, then a checkpoint.
	const durable = 10_000
	for i := 0; i < durable; i++ {
		cl.SetAsync(key(i), val(i)).Release()
	}
	for i := 0; i < 8; i++ {
		cl.RMWAsync([]byte("counter"), delta(1)).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	info, err := shadowfax.NewAdmin(cluster).Checkpoint(ctx, "server-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint committed: version %d, log prefix %#x\n",
		info.Version, info.LogTail)

	// Phase 2: operations still in flight when the server dies. CPR rolls
	// the store back to the checkpoint; the client replays these afterwards.
	const inflight = 100
	futs := make([]*shadowfax.Future, 0, inflight+4)
	for i := 0; i < inflight; i++ {
		futs = append(futs, cl.SetAsync(key(durable+i), val(durable+i)))
	}
	for i := 0; i < 4; i++ {
		futs = append(futs, cl.RMWAsync([]byte("counter"), delta(1)))
	}
	cl.Flush()
	fmt.Printf("crashing with %d operations in flight\n", cl.Outstanding())
	srv.Close() // the crash: memory, sessions, dispatchers — all gone

	// An in-flight future against the dead server diagnoses the breakage.
	probeCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	if _, err := futs[0].Wait(probeCtx); errors.Is(err, shadowfax.ErrSessionBroken) {
		fmt.Printf("sessions broken: %d awaiting recovery\n", cl.BrokenSessions())
	}
	cancel()

	// Recovery: a new server instance rebuilds itself from the image.
	start := time.Now()
	srv2, err := newServer(true)
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	fmt.Printf("server recovered in %v (view %d restored)\n",
		time.Since(start).Round(time.Microsecond), srv2.CurrentView().Number)

	// Client-assisted session recovery: learn the durable prefix, replay
	// past it, and drain the replayed operations. Every stranded future
	// settles exactly once.
	rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
	defer rcancel()
	if err := cl.RecoverSessions(rctx); err != nil {
		log.Fatal(err)
	}
	if err := cl.Drain(rctx); err != nil {
		log.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(rctx); err != nil {
			log.Fatalf("replayed operation failed: %v", err)
		}
		f.Release()
	}

	// Verify: every key — checkpointed and replayed — plus the exact counter.
	bad := 0
	for i := 0; i < durable+inflight; i++ {
		v, err := cl.Get(rctx, key(i))
		if err != nil || string(v) != string(val(i)) {
			bad++
		}
	}
	var counter uint64
	if v, err := cl.Get(rctx, []byte("counter")); err == nil && len(v) == 8 {
		counter = binary.LittleEndian.Uint64(v)
	}
	fmt.Printf("verified %d keys after recovery (%d bad), counter = %d (want 12)\n",
		durable+inflight, bad, counter)
	if bad != 0 || counter != 12 {
		log.Fatal("recovery verification FAILED")
	}
	fmt.Println("recovery verification PASSED: durable prefix served, session replayed exactly once")
}

func key(i int) []byte { return []byte(fmt.Sprintf("user-%07d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("profile-%07d", i)) }

func delta(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}
