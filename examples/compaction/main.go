// Compaction: the space-management subsystem (§3.3.3) under a sustained
// overwrite workload. A small working set is overwritten again and again, so
// the HybridLog grows with dead record versions; without compaction the
// disk-resident prefix grows without bound. The background compaction
// service watches the disk watermark, copies the few live records forward,
// advances the begin address, and punches the dead prefix out of the device
// — the footprint plateaus while foreground operations keep completing.
//
// Checkpoints interleave with compaction throughout, demonstrating the
// clamp: the device is never truncated below the begin address of the latest
// committed checkpoint image, so crash recovery stays possible at any time.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

const (
	liveKeys  = 2_000 // working set: ~176 KiB of live records
	overwrite = 30    // rounds of full-set overwrites
)

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv, err := core.NewServer(core.ServerConfig{
		ID: "server-1", Addr: "server-1", Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 12,
			Log: hlog.Config{
				PageBits: 14, MemPages: 16, MutablePages: 8, // 256 KiB budget
				Device: dev, LogID: "server-1",
			},
		},
		CheckpointDevice: ckptDev,
		CheckpointEvery:  300 * time.Millisecond,
		CompactEvery:     100 * time.Millisecond,
		CompactWatermark: 1 << 20, // compact once ~1 MiB of dead prefix piles up
	}, metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	meta.SetServerAddr("server-1", srv.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	defer ct.Close()

	lg := srv.Store().Log()
	fmt.Println("round  log-span(KiB)  disk-resident(KiB)  device-alloc(KiB)  begin")
	val := make([]byte, 64)
	for round := 0; round < overwrite; round++ {
		for i := uint64(0); i < liveKeys; i++ {
			binary.LittleEndian.PutUint64(val, uint64(round))
			ct.Upsert(ycsb.KeyBytes(i), val, nil)
			for ct.Outstanding() > 1024 {
				ct.Poll()
			}
		}
		if !ct.Drain(30 * time.Second) {
			log.Fatal("overwrite round did not drain")
		}
		if round%5 == 4 {
			span := uint64(lg.TailAddress()-lg.BeginAddress()) >> 10
			fmt.Printf("%5d  %13d  %18d  %17d  %#x\n", round+1, span,
				lg.DiskResidentBytes()>>10, dev.AllocatedBytes()>>10,
				uint64(lg.BeginAddress()))
		}
	}

	// Let the service catch up with the final round, then sum up.
	time.Sleep(500 * time.Millisecond)
	st := srv.Stats()
	last := srv.LastCompaction()
	fmt.Printf("\ncompaction passes: %d (failures %d)\n",
		st.Compactions.Load(), st.CompactionFailures.Load())
	fmt.Printf("reclaimed %d KiB of storage in total; last pass scanned %d, kept %d, dropped %d\n",
		st.CompactReclaimedBytes.Load()>>10, last.Scanned, last.Kept, last.Dropped)
	fmt.Printf("log: begin=%#x tail=%#x — live span %d KiB for a %d KiB working set\n",
		uint64(lg.BeginAddress()), uint64(lg.TailAddress()),
		uint64(lg.TailAddress()-lg.BeginAddress())>>10, liveKeys*88>>10)
	fmt.Printf("device: %d KiB allocated, %d KiB trimmed over the run\n",
		dev.AllocatedBytes()>>10, dev.Stats().TrimmedBytes>>10)

	// Every live key must still be served with its final value.
	bad := 0
	for i := uint64(0); i < liveKeys; i++ {
		ct.Read(ycsb.KeyBytes(i), func(stt wire.ResultStatus, v []byte) {
			if stt != wire.StatusOK || len(v) < 8 ||
				binary.LittleEndian.Uint64(v) != overwrite-1 {
				bad++
			}
		})
	}
	ct.Drain(30 * time.Second)
	if bad != 0 {
		log.Fatalf("%d keys lost or stale after compaction", bad)
	}
	fmt.Printf("verified: all %d live keys intact after %d compaction passes\n",
		liveKeys, st.Compactions.Load())
}
