// Compaction: the space-management subsystem (§3.3.3) under a sustained
// overwrite workload. A small working set is overwritten again and again, so
// the HybridLog grows with dead record versions; without compaction the
// disk-resident prefix grows without bound. The background compaction
// service watches the disk watermark, copies the few live records forward,
// advances the begin address, and punches the dead prefix out of the device
// — the footprint plateaus while foreground operations keep completing.
//
// Checkpoints interleave with compaction throughout, demonstrating the
// clamp: the device is never truncated below the begin address of the latest
// committed checkpoint image, so crash recovery stays possible at any time.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ycsb"
	"repro/shadowfax"
)

const (
	liveKeys  = 2_000 // working set: ~176 KiB of live records
	overwrite = 30    // rounds of full-set overwrites
)

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))
	dev := shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 4)
	defer dev.Close()
	ckptDev := shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv, err := shadowfax.NewServer(cluster, "server-1",
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<12),
		shadowfax.WithMemoryBudget(14, 16, 8), // 256 KiB budget
		shadowfax.WithLogDevice(dev),
		shadowfax.WithCheckpointDevice(ckptDev),
		shadowfax.WithCheckpointEvery(300*time.Millisecond),
		shadowfax.WithCompaction(100*time.Millisecond, 1<<20)) // ~1 MiB watermark
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(1024))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	fmt.Println("round  log-span(KiB)  disk-resident(KiB)  device-alloc(KiB)  begin")
	val := make([]byte, 64)
	for round := 0; round < overwrite; round++ {
		for i := uint64(0); i < liveKeys; i++ {
			binary.LittleEndian.PutUint64(val, uint64(round))
			cl.SetAsync(ycsb.KeyBytes(i), val).Release()
		}
		if err := cl.Drain(ctx); err != nil {
			log.Fatal(err)
		}
		// Pace the rounds: this demo is about a *sustained* overwrite
		// workload coexisting with the background services, not a burst
		// that outruns their polling periods.
		time.Sleep(50 * time.Millisecond)
		if round%5 == 4 {
			lg := srv.LogStats()
			fmt.Printf("%5d  %13d  %18d  %17d  %#x\n", round+1,
				(lg.TailAddress-lg.BeginAddress)>>10,
				lg.DiskResidentBytes>>10, dev.AllocatedBytes()>>10,
				lg.BeginAddress)
		}
	}

	// Let the service catch up with the final round, then sum up.
	time.Sleep(500 * time.Millisecond)
	st := srv.Stats()
	last := srv.LastCompaction()
	lg := srv.LogStats()
	fmt.Printf("\ncompaction passes: %d (failures %d)\n",
		st.Compactions, st.CompactionFailures)
	fmt.Printf("reclaimed %d KiB of storage in total; last pass scanned %d, kept %d, dropped %d\n",
		st.CompactReclaimedBytes>>10, last.Scanned, last.Kept, last.Dropped)
	fmt.Printf("log: begin=%#x tail=%#x — live span %d KiB for a %d KiB working set\n",
		lg.BeginAddress, lg.TailAddress,
		(lg.TailAddress-lg.BeginAddress)>>10, liveKeys*88>>10)
	fmt.Printf("device: %d KiB allocated, %d KiB trimmed over the run\n",
		dev.AllocatedBytes()>>10, dev.Stats().TrimmedBytes>>10)

	// Every live key must still be served with its final value.
	bad := 0
	for i := uint64(0); i < liveKeys; i++ {
		v, err := cl.Get(ctx, ycsb.KeyBytes(i))
		if err != nil || len(v) < 8 || binary.LittleEndian.Uint64(v) != overwrite-1 {
			bad++
		}
	}
	if bad != 0 {
		log.Fatalf("%d keys lost or stale after compaction", bad)
	}
	fmt.Printf("verified: all %d live keys intact after %d compaction passes\n",
		liveKeys, st.Compactions)
}
