// Scaleout: the paper's headline elasticity demo (§3.3). Two servers, all
// data initially on the source; under live YCSB-F load, 10% of the hash
// space is migrated to the idle target with the five-phase protocol, and
// the migration's phases, throughput and report are printed.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/ycsb"
)

const keys = 50_000

func newServer(id string, meta *metadata.Store, tr transport.Transport,
	tier *storage.SharedTier, ranges ...metadata.HashRange) (*core.Server, func()) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	srv, err := core.NewServer(core.ServerConfig{
		ID: id, Addr: id, Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 14,
			Log: hlog.Config{PageBits: 16, MemPages: 128, MutablePages: 64,
				Device: dev, Tier: tier, LogID: id},
		},
		SampleDuration: 200 * time.Millisecond,
	}, ranges...)
	if err != nil {
		log.Fatal(err)
	}
	meta.SetServerAddr(id, srv.Addr())
	return srv, func() { srv.Close(); dev.Close() }
}

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)
	tier := storage.NewSharedTier(storage.LatencyModel{ReadLatency: 2 * time.Millisecond})
	src, closeSrc := newServer("source", meta, tr, tier, metadata.FullRange)
	tgt, closeTgt := newServer("target", meta, tr, tier)
	defer closeTgt()
	defer closeSrc()

	// Load.
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	for i := uint64(0); i < keys; i++ {
		ct.RMW(ycsb.KeyBytes(i), one, nil)
		for ct.Outstanding() > 2048 {
			ct.Poll()
		}
	}
	ct.Drain(30 * time.Second)
	fmt.Printf("loaded %d keys on %s\n", keys, src.ID())

	// Live load in the background.
	stop := make(chan struct{})
	go func() {
		wc, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
		if err != nil {
			return
		}
		defer wc.Close()
		z := ycsb.NewZipfian(keys, ycsb.DefaultTheta, 7)
		for {
			select {
			case <-stop:
				wc.Drain(10 * time.Second)
				return
			default:
			}
			for i := 0; i < 128; i++ {
				wc.RMW(ycsb.KeyBytes(z.Next()), one, nil)
			}
			wc.Flush()
			for wc.Outstanding() > 2048 {
				if wc.Poll() == 0 {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}
	}()
	time.Sleep(time.Second)

	// Migrate 10% of the hash space while serving.
	tenPct := metadata.HashRange{Start: 0, End: ^uint64(0) / 10}
	fmt.Printf("migrating %s from %s to %s...\n", tenPct, src.ID(), tgt.ID())
	if _, err := src.StartMigration("target", tenPct); err != nil {
		log.Fatal(err)
	}

	// Watch until both sides mark the dependency done.
	for {
		time.Sleep(250 * time.Millisecond)
		pend := len(meta.PendingMigrationsFor("source")) +
			len(meta.PendingMigrationsFor("target"))
		fmt.Printf("  source=%-9d target=%-9d pending-deps=%d\n",
			src.Stats().OpsCompleted.Load(), tgt.Stats().OpsCompleted.Load(), pend)
		if pend == 0 {
			break
		}
	}
	close(stop)
	time.Sleep(200 * time.Millisecond)

	rep := src.LastMigrationReport()
	fmt.Printf("migration done: %d records (%d sampled hot, %d indirections), "+
		"%d bytes from memory, ownership moved in %v, total %v\n",
		rep.RecordsSent, rep.SampledRecords, rep.IndirectionsSent,
		rep.BytesFromMemory,
		rep.OwnershipAt.Sub(rep.Started).Round(time.Millisecond),
		rep.Finished.Sub(rep.Started).Round(time.Millisecond))

	// Both servers now serve their halves.
	sv, _ := meta.GetView("source")
	tv, _ := meta.GetView("target")
	fmt.Printf("views: source #%d owns %d ranges; target #%d owns %d ranges\n",
		sv.Number, len(sv.Ranges), tv.Number, len(tv.Ranges))
}
