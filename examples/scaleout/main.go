// Scaleout: the paper's headline elasticity demo (§3.3). Two servers, all
// data initially on the source; under live YCSB-F load, 10% of the hash
// space is migrated to the idle target through the Admin Migrate RPC with
// the five-phase protocol, and the migration's phases, throughput and
// report are printed.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ycsb"
	"repro/shadowfax"
)

const keys = 50_000

func newServer(cluster *shadowfax.Cluster, tier *shadowfax.SharedTier,
	id string, ranges ...shadowfax.HashRange) *shadowfax.Server {
	srv, err := shadowfax.NewServer(cluster, id,
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<14),
		shadowfax.WithMemoryBudget(16, 128, 64),
		shadowfax.WithSharedTier(tier),
		shadowfax.WithSampleDuration(200*time.Millisecond),
		shadowfax.WithOwnership(ranges...))
	if err != nil {
		log.Fatal(err)
	}
	return srv
}

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))
	tier := shadowfax.NewSharedTier(shadowfax.LatencyModel{ReadLatency: 2 * time.Millisecond})
	src := newServer(cluster, tier, "source", shadowfax.FullRange)
	defer src.Close()
	tgt := newServer(cluster, tier, "target")
	defer tgt.Close()
	ctx := context.Background()

	// Load.
	cl, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(2048))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	for i := uint64(0); i < keys; i++ {
		cl.RMWAsync(ycsb.KeyBytes(i), one).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d keys on %s\n", keys, src.ID())

	// Live load in the background: its own client, Zipfian keys.
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		wc, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(2048))
		if err != nil {
			return
		}
		defer wc.Close()
		z := ycsb.NewZipfian(keys, ycsb.DefaultTheta, 7)
		for {
			select {
			case <-stop:
				dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				wc.Drain(dctx)
				cancel()
				return
			default:
			}
			for i := 0; i < 128; i++ {
				wc.RMWAsync(ycsb.KeyBytes(z.Next()), one).Release()
			}
			wc.Flush()
		}
	}()
	time.Sleep(time.Second)

	// Migrate 10% of the hash space while serving, via the admin RPC.
	tenPct := shadowfax.HashRange{Start: 0, End: ^uint64(0) / 10}
	fmt.Printf("migrating %s from %s to %s...\n", tenPct, src.ID(), tgt.ID())
	if err := shadowfax.NewAdmin(cluster).Migrate(ctx, "source", "target", tenPct); err != nil {
		log.Fatal(err)
	}

	// Watch until both sides mark the dependency done.
	for {
		time.Sleep(250 * time.Millisecond)
		pend := len(cluster.PendingMigrations("source")) +
			len(cluster.PendingMigrations("target"))
		fmt.Printf("  source=%-9d target=%-9d pending-deps=%d\n",
			src.Stats().OpsCompleted, tgt.Stats().OpsCompleted, pend)
		if pend == 0 {
			break
		}
	}
	close(stop)
	<-loadDone

	rep := src.LastMigrationReport()
	fmt.Printf("migration done: %d records (%d sampled hot, %d indirections), "+
		"%d bytes from memory, ownership moved in %v, total %v\n",
		rep.RecordsSent, rep.SampledRecords, rep.IndirectionsSent,
		rep.BytesFromMemory,
		rep.OwnershipAt.Sub(rep.Started).Round(time.Millisecond),
		rep.Finished.Sub(rep.Started).Round(time.Millisecond))

	// Both servers now serve their shares.
	sv, _ := cluster.View("source")
	tv, _ := cluster.View("target")
	fmt.Printf("views: source #%d owns %d ranges; target #%d owns %d ranges\n",
		sv.Number, len(sv.Ranges), tv.Number, len(tv.Ranges))
}
