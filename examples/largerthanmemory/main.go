// Largerthanmemory: a dataset several times the server's in-memory budget.
// The HybridLog transparently spills cold pages to the simulated SSD and
// mirrors them to the shared cloud tier; reads of cold keys take the
// asynchronous pending-I/O path and still complete, exactly as §2.2
// describes.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/ycsb"
	"repro/shadowfax"
)

const keys = 60_000 // * ~88B records ≈ 5 MiB, vs a 1 MiB memory budget

func main() {
	cluster := shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetAccelerated))
	tier := shadowfax.NewSharedTier(shadowfax.LatencyModel{ReadLatency: 2 * time.Millisecond})
	// A local "SSD" with realistic-ish latency.
	dev := shadowfax.NewMemDevice(shadowfax.LatencyModel{
		ReadLatency: 100 * time.Microsecond, WriteLatency: 100 * time.Microsecond}, 8)
	defer dev.Close()

	srv, err := shadowfax.NewServer(cluster, "server-1",
		shadowfax.WithThreads(2),
		shadowfax.WithIndexBuckets(1<<14),
		shadowfax.WithMemoryBudget(14, 64, 32), // 1 MiB budget
		shadowfax.WithLogDevice(dev),
		shadowfax.WithSharedTier(tier))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := shadowfax.Dial(cluster, shadowfax.WithMaxOutstanding(2048))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Ingest way past the memory budget.
	val := make([]byte, 64)
	for i := uint64(0); i < keys; i++ {
		binary.LittleEndian.PutUint64(val, i)
		cl.SetAsync(ycsb.KeyBytes(i), val).Release()
	}
	if err := cl.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	lg := srv.LogStats()
	fmt.Printf("ingested %d keys: log tail=%d, in-memory head=%d, flushed=%d bytes\n",
		keys, lg.TailAddress, lg.HeadAddress, lg.FlushedUntilAddress)
	fmt.Printf("shared tier holds %d bytes of server-1's log\n",
		tier.UploadedBytes("server-1"))

	// Cold reads: the oldest keys are on "SSD" now.
	start := time.Now()
	var coldOK int
	for i := uint64(0); i < 500; i++ {
		v, err := cl.Get(ctx, ycsb.KeyBytes(i))
		if err == nil && binary.LittleEndian.Uint64(v) == i {
			coldOK++
		}
	}
	fmt.Printf("cold reads: %d/500 correct in %v (served via async pending I/O)\n",
		coldOK, time.Since(start).Round(time.Millisecond))
	fmt.Printf("store issued %d pending storage reads\n",
		srv.Stats().StorePendingReads)

	// Hot reads: recent keys stay in the mutable region.
	start = time.Now()
	var hotOK int
	for i := uint64(keys - 500); i < keys; i++ {
		v, err := cl.Get(ctx, ycsb.KeyBytes(i))
		if err == nil && binary.LittleEndian.Uint64(v) == i {
			hotOK++
		}
	}
	fmt.Printf("hot reads:  %d/500 correct in %v (all in memory)\n",
		hotOK, time.Since(start).Round(time.Millisecond))
}
