// Largerthanmemory: a dataset several times the server's in-memory budget.
// The HybridLog transparently spills cold pages to the simulated SSD and
// mirrors them to the shared cloud tier; reads of cold keys take the
// asynchronous pending-I/O path and still complete, exactly as §2.2
// describes.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

const keys = 60_000 // * ~88B records ≈ 5 MiB, vs a 1 MiB memory budget

func main() {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.AcceleratedTCP)
	tier := storage.NewSharedTier(storage.LatencyModel{ReadLatency: 2 * time.Millisecond})
	// A local "SSD" with realistic-ish latency.
	dev := storage.NewMemDevice(storage.LatencyModel{
		ReadLatency: 100 * time.Microsecond, WriteLatency: 100 * time.Microsecond}, 8)
	defer dev.Close()

	srv, err := core.NewServer(core.ServerConfig{
		ID: "server-1", Addr: "server-1", Threads: 2,
		Transport: tr, Meta: meta,
		Store: faster.Config{
			IndexBuckets: 1 << 14,
			Log: hlog.Config{
				PageBits: 14, MemPages: 64, MutablePages: 32, // 1 MiB budget
				Device: dev, Tier: tier, LogID: "server-1",
			},
		},
	}, metadata.FullRange)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	meta.SetServerAddr("server-1", srv.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		log.Fatal(err)
	}
	defer ct.Close()

	// Ingest way past the memory budget.
	val := make([]byte, 64)
	for i := uint64(0); i < keys; i++ {
		binary.LittleEndian.PutUint64(val, i)
		ct.Upsert(ycsb.KeyBytes(i), val, nil)
		for ct.Outstanding() > 2048 {
			ct.Poll()
		}
	}
	if !ct.Drain(60 * time.Second) {
		log.Fatal("load did not drain")
	}
	lg := srv.Store().Log()
	fmt.Printf("ingested %d keys: log tail=%d, in-memory head=%d, flushed=%d bytes\n",
		keys, lg.TailAddress(), lg.HeadAddress(), lg.FlushedUntilAddress())
	fmt.Printf("shared tier holds %d bytes of server-1's log\n",
		tier.UploadedBytes("server-1"))

	// Cold reads: the oldest keys are on "SSD" now.
	start := time.Now()
	var coldOK int
	for i := uint64(0); i < 500; i++ {
		want := i
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st == wire.StatusOK && binary.LittleEndian.Uint64(v) == want {
				coldOK++
			}
		})
	}
	ct.Drain(60 * time.Second)
	fmt.Printf("cold reads: %d/500 correct in %v (served via async pending I/O)\n",
		coldOK, time.Since(start).Round(time.Millisecond))
	fmt.Printf("store issued %d pending storage reads\n",
		srv.Store().Stats().PendingIssued.Load())

	// Hot reads: recent keys stay in the mutable region.
	start = time.Now()
	var hotOK int
	for i := uint64(keys - 500); i < keys; i++ {
		want := i
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st == wire.StatusOK && binary.LittleEndian.Uint64(v) == want {
				hotOK++
			}
		})
	}
	ct.Drain(60 * time.Second)
	fmt.Printf("hot reads:  %d/500 correct in %v (all in memory)\n",
		hotOK, time.Since(start).Round(time.Millisecond))
}
